package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func populated() *Registry {
	r := New(WithTrackCap(8))
	r.Counter("net/put_bytes").Add(4096)
	r.Counter("amo/fetch_add").Add(3)
	r.Gauge("pool/regions").Set(7)
	h := r.Histogram("lat/put_ns", []Time{100, 1000, 10000})
	h.Observe(50)
	h.Observe(500)
	h.Observe(99999)
	r.Span(TrackRank, "rank0", "put", 100, 400)
	r.SpanArg(TrackLink, "x+", "xfer", "net", 150, 350, 512)
	r.Instant(TrackProgress, "async0", "wakeup", 200)
	return r
}

func TestSnapshotJSONDeterministicAndValid(t *testing.T) {
	var a, b bytes.Buffer
	if err := populated().SnapshotJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := populated().SnapshotJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("identical registries produced different snapshots:\n%s\nvs\n%s", a.String(), b.String())
	}
	if strings.ContainsAny(a.String(), "\n\r") {
		t.Fatal("snapshot must be a single line")
	}
	var doc struct {
		Counters   map[string]int64 `json:"counters"`
		Gauges     map[string]int64 `json:"gauges"`
		Histograms map[string]struct {
			Count    uint64     `json:"count"`
			Sum      int64      `json:"sum"`
			Buckets  [][2]int64 `json:"buckets"`
			Overflow uint64     `json:"overflow"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, a.String())
	}
	if doc.Counters["net/put_bytes"] != 4096 || doc.Counters["amo/fetch_add"] != 3 {
		t.Fatalf("counters wrong: %v", doc.Counters)
	}
	if doc.Gauges["pool/regions"] != 7 {
		t.Fatalf("gauges wrong: %v", doc.Gauges)
	}
	h := doc.Histograms["lat/put_ns"]
	if h.Count != 3 || h.Sum != 50+500+99999 || h.Overflow != 1 {
		t.Fatalf("histogram wrong: %+v", h)
	}
	if len(h.Buckets) != 3 || h.Buckets[0] != [2]int64{100, 1} || h.Buckets[1] != [2]int64{1000, 1} || h.Buckets[2] != [2]int64{10000, 0} {
		t.Fatalf("buckets wrong: %v", h.Buckets)
	}
	// Section names must come out sorted, same discipline as WritePrometheus.
	s := a.String()
	if strings.Index(s, `"amo/fetch_add"`) > strings.Index(s, `"net/put_bytes"`) {
		t.Fatal("counter names not sorted")
	}
}

func TestSnapshotJSONNilAndEmpty(t *testing.T) {
	const empty = `{"counters":{},"gauges":{},"histograms":{}}`
	var buf bytes.Buffer
	var nilReg *Registry
	if err := nilReg.SnapshotJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != empty {
		t.Fatalf("nil registry snapshot = %q, want %q", buf.String(), empty)
	}
	buf.Reset()
	if err := New().SnapshotJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != empty {
		t.Fatalf("empty registry snapshot = %q, want %q", buf.String(), empty)
	}
}

func TestTraceStreamerDeterministicAndStable(t *testing.T) {
	mkRegs := func() []*Registry {
		r1 := New(WithTrackCap(8))
		r1.Span(TrackRank, "rank1", "get", 10, 30)
		r1.Span(TrackRank, "rank0", "put", 5, 20)
		r2 := New(WithTrackCap(8))
		r2.Span(TrackRank, "rank0", "put", 40, 60) // existing track: no new metadata
		r2.Instant(TrackLink, "y-", "drop", 45)    // new kind + track mid-stream
		return []*Registry{r1, r2}
	}
	run := func() []string {
		ts := NewTraceStreamer()
		var all []string
		for _, r := range mkRegs() {
			all = append(all, ts.Emit(r)...)
		}
		return all
	}
	a, b := run(), run()
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Fatal("identical input sequences produced different streams")
	}

	// Every line is a valid standalone JSON object, and the concatenation
	// is a loadable trace_event array.
	for _, line := range a {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line is not valid JSON: %v\n%s", err, line)
		}
	}
	var arr []map[string]any
	doc := "[" + strings.Join(a, ",") + "]"
	if err := json.Unmarshal([]byte(doc), &arr); err != nil {
		t.Fatalf("concatenated stream is not a JSON array: %v", err)
	}

	// Metadata exactly once per kind and per track; rank0 keeps its tid
	// across Emit calls.
	var procMeta, threadMeta, events int
	tidByTrack := map[string][]float64{}
	for _, obj := range arr {
		switch obj["name"] {
		case "process_name":
			procMeta++
		case "thread_name":
			threadMeta++
			name := obj["args"].(map[string]any)["name"].(string)
			tidByTrack[name] = append(tidByTrack[name], obj["tid"].(float64))
		default:
			events++
		}
	}
	if procMeta != 2 { // ranks, links
		t.Fatalf("process_name metadata emitted %d times, want 2", procMeta)
	}
	if threadMeta != 3 { // rank0, rank1, y-
		t.Fatalf("thread_name metadata emitted %d times, want 3", threadMeta)
	}
	if events != 4 {
		t.Fatalf("streamed %d events, want 4", events)
	}
	if len(tidByTrack["rank0"]) != 1 {
		t.Fatalf("rank0 metadata repeated: %v", tidByTrack["rank0"])
	}
}

func TestTraceStreamerMatchesWriteChromeTrace(t *testing.T) {
	// For a single registry, the streamer's event lines (excluding "M"
	// metadata) must be exactly WriteChromeTrace's event lines: same
	// encoding, same pid/tid assignment, same global sort.
	reg := populated()
	var buf bytes.Buffer
	if err := reg.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var fromWriter []string
	for _, line := range strings.Split(buf.String(), "\n") {
		line = strings.TrimSuffix(strings.TrimSpace(line), ",")
		if strings.HasPrefix(line, `{"ph":"X"`) || strings.HasPrefix(line, `{"ph":"i"`) {
			fromWriter = append(fromWriter, line)
		}
	}
	var fromStream []string
	for _, line := range NewTraceStreamer().Emit(reg) {
		if !strings.HasPrefix(line, `{"ph":"M"`) {
			fromStream = append(fromStream, line)
		}
	}
	if strings.Join(fromWriter, "\n") != strings.Join(fromStream, "\n") {
		t.Fatalf("streamer events diverge from WriteChromeTrace:\nwriter:\n%s\nstream:\n%s",
			strings.Join(fromWriter, "\n"), strings.Join(fromStream, "\n"))
	}
	if NewTraceStreamer().Emit(nil) != nil {
		t.Fatal("nil registry should stream nothing")
	}
	if NewTraceStreamer().Emit(New()) != nil {
		t.Fatal("trace-empty registry should stream nothing")
	}
}
