package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("serve/cache.hits").Add(7)
	r.Counter("serve/requests{scenario=micro}").Add(3)
	r.Counter("serve/requests{scenario=chaos}").Add(2)
	r.Gauge("serve/queue.depth").Set(4)
	h := r.Histogram("serve/run.latency_ns{scenario=micro}", []Time{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()

	want := strings.Join([]string{
		`# TYPE serve_cache_hits counter`,
		`serve_cache_hits 7`,
		`# TYPE serve_queue_depth gauge`,
		`serve_queue_depth 4`,
		`# TYPE serve_requests counter`,
		`serve_requests{scenario="chaos"} 2`,
		`serve_requests{scenario="micro"} 3`,
		`# TYPE serve_run_latency_ns histogram`,
		`serve_run_latency_ns_bucket{scenario="micro",le="10"} 1`,
		`serve_run_latency_ns_bucket{scenario="micro",le="100"} 2`,
		`serve_run_latency_ns_bucket{scenario="micro",le="+Inf"} 3`,
		`serve_run_latency_ns_sum{scenario="micro"} 555`,
		`serve_run_latency_ns_count{scenario="micro"} 3`,
	}, "\n") + "\n"
	if got != want {
		t.Fatalf("Prometheus exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWritePrometheusDeterministic: two identically built registries
// produce byte-identical expositions (map iteration must never leak).
func TestWritePrometheusDeterministic(t *testing.T) {
	build := func() string {
		r := New()
		for _, n := range []string{"b/x", "a/y{k=1}", "a/y{k=2}", "c/z"} {
			r.Counter(n).Add(1)
		}
		r.Gauge("a/g").SetMax(9)
		r.Histogram("m/h{rank=0}", DefaultLatencyBounds).Observe(1234)
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	first := build()
	for i := 0; i < 10; i++ {
		if build() != first {
			t.Fatal("exposition is not deterministic across identical registries")
		}
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var r *Registry
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry: err=%v len=%d", err, buf.Len())
	}
}
