package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// TrackKind classifies trace tracks. In the Chrome trace_event export
// each kind becomes one "process" and each track one "thread" under it,
// so Perfetto groups all rank timelines, all progress threads, and all
// torus links into three collapsible lanes.
type TrackKind uint8

const (
	// TrackOther is the default for uncategorized threads.
	TrackOther TrackKind = iota
	// TrackRank holds one track per application (main) thread / rank.
	TrackRank
	// TrackProgress holds one track per asynchronous progress thread.
	TrackProgress
	// TrackLink holds one track per unidirectional torus link.
	TrackLink

	numTrackKinds
)

func (k TrackKind) String() string {
	switch k {
	case TrackOther:
		return "other"
	case TrackRank:
		return "ranks"
	case TrackProgress:
		return "progress"
	case TrackLink:
		return "links"
	}
	return "?"
}

type trackKey struct {
	kind TrackKind
	id   string
}

// spanRec is one retained trace record. phase 'X' is a duration span,
// 'i' an instant.
type spanRec struct {
	start, end Time
	name, cat  string
	arg        int64
	hasArg     bool
	phase      byte
	seq        uint64
}

// track is a fixed-capacity ring of records, keeping the most recent
// window per (kind, id).
type track struct {
	ring  []spanRec
	head  int
	total uint64
}

func (r *Registry) record(kind TrackKind, id string, rec spanRec) {
	rec.seq = r.seq
	r.seq++
	key := trackKey{kind, id}
	t, ok := r.tracks[key]
	if !ok {
		t = &track{}
		r.tracks[key] = t
	}
	if len(t.ring) < r.trackCap {
		t.ring = append(t.ring, rec)
	} else {
		t.ring[t.head] = rec
		t.head = (t.head + 1) % r.trackCap
	}
	t.total++
}

// Span records a duration [start, end] on the given track. No-op on a
// nil registry.
func (r *Registry) Span(kind TrackKind, id, name string, start, end Time) {
	if r == nil {
		return
	}
	r.record(kind, id, spanRec{start: start, end: end, name: name, phase: 'X'})
}

// SpanArg is Span with a category string and a scalar argument (payload
// bytes, item counts) attached.
func (r *Registry) SpanArg(kind TrackKind, id, name, cat string, start, end Time, arg int64) {
	if r == nil {
		return
	}
	r.record(kind, id, spanRec{start: start, end: end, name: name, cat: cat, arg: arg, hasArg: true, phase: 'X'})
}

// Instant records a point event on the given track. No-op on a nil
// registry.
func (r *Registry) Instant(kind TrackKind, id, name string, at Time) {
	if r == nil {
		return
	}
	r.record(kind, id, spanRec{start: at, end: at, name: name, phase: 'i'})
}

// InstantArg is Instant with a category string and scalar argument.
func (r *Registry) InstantArg(kind TrackKind, id, name, cat string, at Time, arg int64) {
	if r == nil {
		return
	}
	r.record(kind, id, spanRec{start: at, end: at, name: name, cat: cat, arg: arg, hasArg: true, phase: 'i'})
}

// Event is one retained trace record, as returned by Events.
type Event struct {
	Kind       TrackKind
	Track      string // track id within the kind
	Name       string
	Cat        string
	Start, End Time
	Arg        int64
	Instant    bool
	seq        uint64
}

// Events returns the retained records of one track kind, time-ordered
// (start time, then record order). match, when non-nil, filters records
// before the sort — filtering a large trace never pays for sorting
// records it is about to drop.
func (r *Registry) Events(kind TrackKind, match func(Event) bool) []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for key, t := range r.tracks {
		if key.kind != kind {
			continue
		}
		for _, rec := range t.ring {
			e := Event{
				Kind: key.kind, Track: key.id, Name: rec.name, Cat: rec.cat,
				Start: rec.start, End: rec.end, Arg: rec.arg,
				Instant: rec.phase == 'i', seq: rec.seq,
			}
			if match == nil || match(e) {
				out = append(out, e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].seq < out[j].seq
	})
	return out
}

// EventsTotal returns how many records were ever added to tracks of the
// given kind, including evicted ones.
func (r *Registry) EventsTotal(kind TrackKind) uint64 {
	if r == nil {
		return 0
	}
	var n uint64
	for key, t := range r.tracks {
		if key.kind == kind {
			n += t.total
		}
	}
	return n
}

// jstr renders s as a JSON string literal.
func jstr(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		panic(err) // strings always marshal
	}
	return string(b)
}

// WriteChromeTrace exports every retained trace record as Chrome
// trace_event JSON (the format Perfetto and chrome://tracing load). Each
// TrackKind becomes a process, each track a named thread; durations are
// "X" complete events and instants "i" events, with virtual time mapped
// to microseconds at nanosecond resolution. Output is deterministic:
// tracks are sorted by (kind, id) and events by (time, insertion order).
func (r *Registry) WriteChromeTrace(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}\n")
		return err
	}

	// Stable (kind, id) -> (pid, tid) assignment.
	keys := make([]trackKey, 0, len(r.tracks))
	for key := range r.tracks {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].kind != keys[j].kind {
			return keys[i].kind < keys[j].kind
		}
		return keys[i].id < keys[j].id
	})
	tids := make(map[trackKey]int, len(keys))
	kindSeen := make([]bool, numTrackKinds)
	next := make([]int, numTrackKinds)
	for _, key := range keys {
		tids[key] = next[key.kind]
		next[key.kind]++
		kindSeen[key.kind] = true
	}
	pid := func(k TrackKind) int { return int(k) + 1 }

	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(line string) error {
		if !first {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err := io.WriteString(w, line)
		return err
	}

	// Metadata: name each process (track kind) and thread (track).
	for k := TrackKind(0); k < numTrackKinds; k++ {
		if !kindSeen[k] {
			continue
		}
		if err := emit(fmt.Sprintf(
			`{"ph":"M","pid":%d,"tid":0,"name":"process_name","args":{"name":%s}}`,
			pid(k), jstr(k.String()))); err != nil {
			return err
		}
	}
	for _, key := range keys {
		if err := emit(fmt.Sprintf(
			`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
			pid(key.kind), tids[key], jstr(key.id))); err != nil {
			return err
		}
	}

	// Events across every track, globally time-ordered.
	type flatEvent struct {
		rec      spanRec
		pid, tid int
	}
	var evs []flatEvent
	for _, key := range keys {
		for _, rec := range r.tracks[key].ring {
			evs = append(evs, flatEvent{rec: rec, pid: pid(key.kind), tid: tids[key]})
		}
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].rec.start != evs[j].rec.start {
			return evs[i].rec.start < evs[j].rec.start
		}
		return evs[i].rec.seq < evs[j].rec.seq
	})
	for _, e := range evs {
		if err := emit(chromeEventLine(e.rec, e.pid, e.tid)); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}

// chromeEventLine encodes one retained record as a single-line Chrome
// trace_event JSON object (shared by WriteChromeTrace and the streaming
// TraceStreamer).
func chromeEventLine(rec spanRec, pid, tid int) string {
	var line string
	// ts/dur are microseconds; %d.%03d keeps exact ns resolution
	// without float formatting.
	ts := fmt.Sprintf("%d.%03d", rec.start/1000, rec.start%1000)
	switch rec.phase {
	case 'X':
		dur := rec.end - rec.start
		line = fmt.Sprintf(`{"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%d.%03d,"name":%s`,
			pid, tid, ts, dur/1000, dur%1000, jstr(rec.name))
	default:
		line = fmt.Sprintf(`{"ph":"i","pid":%d,"tid":%d,"ts":%s,"s":"t","name":%s`,
			pid, tid, ts, jstr(rec.name))
	}
	if rec.cat != "" {
		line += fmt.Sprintf(`,"cat":%s`, jstr(rec.cat))
	}
	if rec.hasArg {
		line += fmt.Sprintf(`,"args":{"arg":%d}`, rec.arg)
	}
	return line + "}"
}
