// Package obs is the process-wide observability layer for the simulation
// stack: a metrics registry (counters, gauges, fixed-bucket histograms)
// plus a structured span/event tracer that exports Chrome trace_event
// JSON loadable in Perfetto.
//
// Design rules:
//
//   - Everything hangs off an injectable *Registry. A nil Registry (and
//     the nil handles it yields) is a safe no-op, so instrumented code
//     pays one pointer check and zero allocations when observability is
//     off.
//   - Metric names follow layer/name{label=value,...}, e.g.
//     "network/link.busy_ns{link=42}" or "pami/ctx.advances{rank=3,ctx=1}".
//     The registry treats the full string as the key; callers cache the
//     returned handle so name formatting happens once, at setup time.
//   - The registry is single-threaded by design: the simulation kernel
//     serializes all simulated threads, so no locking is needed (or
//     provided). The coroutine handoff channels give the race detector
//     the happens-before edges it wants.
//   - All exports are deterministic: iteration is always over sorted
//     keys, trace events carry a monotone sequence number, and no wall
//     clock is ever consulted. Two identical simulation runs produce
//     byte-identical dumps.
//
// Time is virtual nanoseconds. The package deliberately does not import
// internal/sim (sim imports obs for kernel instrumentation); sim.Time is
// an int64 alias, so the two Time types are interchangeable.
package obs

// Time is virtual time in nanoseconds (interchangeable with sim.Time).
type Time = int64

// Registry is the process-wide metrics + trace sink. The zero value is
// not usable; call New. A nil *Registry is a valid no-op sink: every
// method checks the receiver.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	tracks   map[trackKey]*track
	trackCap int
	seq      uint64
}

// Option configures a Registry.
type Option func(*Registry)

// WithTrackCap bounds each trace track's ring buffer to n events (default
// DefaultTrackCap). Long simulations keep the most recent window.
func WithTrackCap(n int) Option {
	if n <= 0 {
		panic("obs: non-positive track capacity")
	}
	return func(r *Registry) { r.trackCap = n }
}

// DefaultTrackCap is the default per-track trace ring capacity.
const DefaultTrackCap = 8192

// New returns an empty registry.
func New(opts ...Option) *Registry {
	r := &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		tracks:   make(map[trackKey]*track),
		trackCap: DefaultTrackCap,
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Counter returns (creating if needed) the named counter. Returns nil on
// a nil registry; the nil handle's methods are no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram with the
// given upper bucket bounds (see NewHistogram). If the histogram already
// exists the original bounds are kept. Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []Time) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}
