package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// SnapshotJSON writes the registry's full metric state as one compact
// (single-line) JSON object:
//
//	{"counters":{name:value,...},
//	 "gauges":{name:value,...},
//	 "histograms":{name:{"count":n,"sum":s,"buckets":[[bound,count],...],"overflow":c},...}}
//
// Ordering is deterministic with the same discipline as WritePrometheus:
// every section iterates its names sorted, so two identical registries —
// or the same run replayed at a different sweep worker count — produce
// byte-identical snapshots. The single-line shape is what lets the
// serving layer embed a snapshot verbatim as one SSE `metrics` event.
//
// Like the other exporters, SnapshotJSON does not lock: callers sharing
// the registry across goroutines serialize access themselves. A nil
// registry writes an empty (but valid) snapshot.
func (r *Registry) SnapshotJSON(w io.Writer) error {
	var b strings.Builder
	b.WriteString(`{"counters":{`)
	if r != nil {
		names := make([]string, 0, len(r.counters))
		for name := range r.counters {
			names = append(names, name)
		}
		sort.Strings(names)
		for i, name := range names {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s:%d", jstr(name), r.counters[name].v)
		}
	}
	b.WriteString(`},"gauges":{`)
	if r != nil {
		names := make([]string, 0, len(r.gauges))
		for name := range r.gauges {
			names = append(names, name)
		}
		sort.Strings(names)
		for i, name := range names {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s:%d", jstr(name), r.gauges[name].v)
		}
	}
	b.WriteString(`},"histograms":{`)
	if r != nil {
		names := make([]string, 0, len(r.hists))
		for name := range r.hists {
			names = append(names, name)
		}
		sort.Strings(names)
		for i, name := range names {
			if i > 0 {
				b.WriteByte(',')
			}
			h := r.hists[name]
			fmt.Fprintf(&b, `%s:{"count":%d,"sum":%d,"buckets":[`, jstr(name), h.n, h.sum)
			for j, bound := range h.bounds {
				if j > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "[%d,%d]", bound, h.counts[j])
			}
			fmt.Fprintf(&b, `],"overflow":%d}`, h.counts[len(h.bounds)])
		}
	}
	b.WriteString("}}")
	_, err := io.WriteString(w, b.String())
	return err
}
