package obs

import "sort"

// TraceStreamer converts a sequence of registries — typically the
// per-point child registries a sweep delivers in submission order —
// into an incremental Chrome trace_event stream. Each Emit call returns
// single-line JSON objects (the same encoding WriteChromeTrace uses)
// for every record retained in reg, preceded by process_name /
// thread_name metadata lines the first time a track kind or track
// appears. pid/tid assignment is stable across calls: a track keeps its
// tid for the streamer's lifetime, so a client concatenating
//
//	"[" + join(all emitted lines, ",") + "]"
//
// gets a valid trace_event JSON array loadable in Perfetto (Perfetto
// also accepts the unterminated array, which is what makes live piping
// work).
//
// Determinism: within one Emit, new tracks are discovered in sorted
// (kind, id) order and records are emitted in (start time, record
// order) order — so feeding the same registries in the same order
// always yields the same lines, which is what lets the serving layer's
// event-log replay be byte-exact.
type TraceStreamer struct {
	tids     map[trackKey]int
	next     [numTrackKinds]int
	kindSeen [numTrackKinds]bool
}

// NewTraceStreamer returns an empty streamer. Use one per logical trace
// (per run); mixing runs would interleave their tid spaces.
func NewTraceStreamer() *TraceStreamer {
	return &TraceStreamer{tids: make(map[trackKey]int)}
}

// pid mirrors WriteChromeTrace's kind → process assignment.
func streamPid(k TrackKind) int { return int(k) + 1 }

// Emit returns the trace_event lines for every record retained in reg,
// assigning stable pids/tids and prepending metadata lines for tracks
// and kinds seen for the first time. A nil or trace-empty registry
// yields nil.
func (ts *TraceStreamer) Emit(reg *Registry) []string {
	if reg == nil || len(reg.tracks) == 0 {
		return nil
	}
	keys := make([]trackKey, 0, len(reg.tracks))
	for key := range reg.tracks {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].kind != keys[j].kind {
			return keys[i].kind < keys[j].kind
		}
		return keys[i].id < keys[j].id
	})

	var lines []string
	for _, key := range keys {
		if _, ok := ts.tids[key]; ok {
			continue
		}
		if !ts.kindSeen[key.kind] {
			ts.kindSeen[key.kind] = true
			lines = append(lines, chromeMetaLine(streamPid(key.kind), 0, "process_name", key.kind.String()))
		}
		tid := ts.next[key.kind]
		ts.next[key.kind]++
		ts.tids[key] = tid
		lines = append(lines, chromeMetaLine(streamPid(key.kind), tid, "thread_name", key.id))
	}

	type flatEvent struct {
		rec      spanRec
		pid, tid int
	}
	var evs []flatEvent
	for _, key := range keys {
		for _, rec := range reg.tracks[key].ring {
			evs = append(evs, flatEvent{rec: rec, pid: streamPid(key.kind), tid: ts.tids[key]})
		}
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].rec.start != evs[j].rec.start {
			return evs[i].rec.start < evs[j].rec.start
		}
		return evs[i].rec.seq < evs[j].rec.seq
	})
	for _, e := range evs {
		lines = append(lines, chromeEventLine(e.rec, e.pid, e.tid))
	}
	return lines
}

// chromeMetaLine encodes a process_name/thread_name metadata event.
func chromeMetaLine(pid, tid int, kind, name string) string {
	return `{"ph":"M","pid":` + itoa(pid) + `,"tid":` + itoa(tid) +
		`,"name":` + jstr(kind) + `,"args":{"name":` + jstr(name) + `}}`
}

// itoa avoids pulling fmt into the hot path for two small ints.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := v < 0
	if neg {
		v = -v
	}
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
