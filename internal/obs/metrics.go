package obs

import (
	"fmt"
	"io"
	"sort"
)

// Counter is a monotonically growing sum. The nil handle is a no-op.
type Counter struct {
	v int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v += delta
}

// Value returns the accumulated sum (0 on a nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-or-max value. The nil handle is a no-op.
type Gauge struct {
	v     int64
	set   bool
	isMax bool // last write style; Registry.Merge replays it cross-run
}

// Set records v as the current value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v, g.set, g.isMax = v, true, false
}

// SetMax records v only if it exceeds the current value (high-water mark
// semantics, e.g. worst progress-starvation interval observed).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	g.isMax = true
	if !g.set || v > g.v {
		g.v, g.set = v, true
	}
}

// Value returns the gauge value (0 on a nil or never-set handle).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a fixed-bucket histogram over int64 samples (virtual-time
// durations, byte counts). A sample v lands in the first bucket whose
// bound satisfies v <= bound; samples above every bound land in the
// overflow bucket. The nil handle is a no-op.
type Histogram struct {
	bounds []Time   // strictly increasing inclusive upper bounds
	counts []uint64 // len(bounds)+1; last is overflow
	sum    int64
	n      uint64
}

// NewHistogram builds a histogram with the given inclusive upper bounds,
// which must be strictly increasing and non-empty.
func NewHistogram(bounds []Time) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	b := append([]Time(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// ExpBounds returns n exponentially spaced bounds starting at first and
// multiplying by factor, for latency-style distributions.
func ExpBounds(first Time, factor float64, n int) []Time {
	if first <= 0 || factor <= 1 || n <= 0 {
		panic("obs: invalid exponential bounds")
	}
	out := make([]Time, n)
	v := float64(first)
	for i := range out {
		out[i] = Time(v)
		v *= factor
	}
	return out
}

// DefaultLatencyBounds covers 100 ns .. ~26 ms in powers of two — the
// virtual-time range of everything from a single hop to a full SCF task.
var DefaultLatencyBounds = ExpBounds(100, 2, 19)

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.n++
	h.sum += v
	// Binary search the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo]++
}

// Count returns the number of samples (0 on a nil handle).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the sample total (0 on a nil handle).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the sample mean (0 when empty or nil).
func (h *Histogram) Mean() float64 {
	if h == nil || h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Buckets returns copies of the bounds and per-bucket counts; the counts
// slice has one extra trailing overflow entry.
func (h *Histogram) Buckets() (bounds []Time, counts []uint64) {
	if h == nil {
		return nil, nil
	}
	return append([]Time(nil), h.bounds...), append([]uint64(nil), h.counts...)
}

// WriteMetrics dumps every metric as one line of text, sorted by kind
// then name, in a stable machine-readable format:
//
//	counter <name> <value>
//	gauge <name> <value>
//	hist <name> count=<n> sum=<s> le<bound>=<count>... overflow=<count>
//
// cmd/obs-report consumes this format.
func (r *Registry) WriteMetrics(w io.Writer) error {
	if r == nil {
		return nil
	}
	var lines []string
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("counter %s %d", name, c.v))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("gauge %s %d", name, g.v))
	}
	for name, h := range r.hists {
		line := fmt.Sprintf("hist %s count=%d sum=%d", name, h.n, h.sum)
		for i, b := range h.bounds {
			line += fmt.Sprintf(" le%d=%d", b, h.counts[i])
		}
		line += fmt.Sprintf(" overflow=%d", h.counts[len(h.bounds)])
		lines = append(lines, line)
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}
