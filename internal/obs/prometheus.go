package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus exposes every metric in the Prometheus text format
// (version 0.0.4), the lingua franca scrapers expect from a /metrics
// endpoint. The mapping from the registry's layer/name{label=value,...}
// convention:
//
//   - the base name is sanitized into a Prometheus metric name:
//     "serve/cache.hits" becomes "serve_cache_hits";
//   - the {label=value,...} suffix becomes a Prometheus label set with
//     quoted, escaped values;
//   - counters and gauges map directly; histograms expose the standard
//     cumulative _bucket{le="..."} series (the registry's inclusive
//     upper bounds are already le semantics) plus _sum and _count.
//
// Output is deterministic: families sort by name, series sort by label
// set within a family, and a # TYPE line precedes each family exactly
// once. Like WriteMetrics, the method does not lock anything — callers
// serving a concurrent scrape endpoint must serialize access to the
// registry themselves.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	type series struct {
		labels string // rendered {k="v",...} or ""
		lines  []string
	}
	type family struct {
		name   string
		kind   string // counter | gauge | histogram
		series []series
	}
	fams := map[string]*family{}
	get := func(raw, kind string) (*family, string) {
		base, labels := splitPromName(raw)
		f, ok := fams[base]
		if !ok {
			f = &family{name: base, kind: kind}
			fams[base] = f
		}
		return f, labels
	}

	for name, c := range r.counters {
		f, labels := get(name, "counter")
		f.series = append(f.series, series{labels: labels,
			lines: []string{fmt.Sprintf("%s%s %d", f.name, labels, c.v)}})
	}
	for name, g := range r.gauges {
		f, labels := get(name, "gauge")
		f.series = append(f.series, series{labels: labels,
			lines: []string{fmt.Sprintf("%s%s %d", f.name, labels, g.v)}})
	}
	for name, h := range r.hists {
		f, labels := get(name, "histogram")
		s := series{labels: labels}
		var cum uint64
		for i, b := range h.bounds {
			cum += h.counts[i]
			s.lines = append(s.lines, fmt.Sprintf("%s_bucket%s %d",
				f.name, promAddLabel(labels, "le", fmt.Sprint(b)), cum))
		}
		cum += h.counts[len(h.bounds)]
		s.lines = append(s.lines,
			fmt.Sprintf("%s_bucket%s %d", f.name, promAddLabel(labels, "le", "+Inf"), cum),
			fmt.Sprintf("%s_sum%s %d", f.name, labels, h.sum),
			fmt.Sprintf("%s_count%s %d", f.name, labels, h.n))
		f.series = append(f.series, s)
	}

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fams[n]
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			for _, l := range s.lines {
				if _, err := fmt.Fprintln(w, l); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// splitPromName splits a registry metric name into a sanitized Prometheus
// family name and a rendered label block ("" when unlabeled).
func splitPromName(raw string) (base, labels string) {
	base = raw
	if i := strings.IndexByte(raw, '{'); i >= 0 {
		base = raw[:i]
		inner := strings.TrimSuffix(raw[i+1:], "}")
		var parts []string
		for _, kv := range strings.Split(inner, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				k, v = "label", kv
			}
			// %q escapes exactly the character set the text format
			// requires in label values (backslash, quote, newline).
			parts = append(parts, fmt.Sprintf("%s=%q", sanitizePromName(k), v))
		}
		sort.Strings(parts)
		labels = "{" + strings.Join(parts, ",") + "}"
	}
	return sanitizePromName(base), labels
}

// promAddLabel inserts one extra label into an already rendered block.
func promAddLabel(labels, k, v string) string {
	kv := fmt.Sprintf("%s=%q", k, v)
	if labels == "" {
		return "{" + kv + "}"
	}
	return strings.TrimSuffix(labels, "}") + "," + kv + "}"
}

// sanitizePromName maps an arbitrary registry name fragment onto the
// Prometheus identifier alphabet [a-zA-Z0-9_:].
func sanitizePromName(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			c = '_'
		}
		b.WriteRune(c)
	}
	return b.String()
}
