package obs

import (
	"bytes"
	"testing"
)

// dumpAll renders a registry's complete observable state.
func dumpAll(t *testing.T, r *Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestMergeMetricsSemantics(t *testing.T) {
	parent := New()
	a := New()
	b := New()

	a.Counter("n").Add(3)
	b.Counter("n").Add(4)
	b.Counter("only_b").Add(1)

	a.Gauge("last").Set(10)
	b.Gauge("last").Set(20)
	a.Gauge("hiwater").SetMax(50)
	b.Gauge("hiwater").SetMax(30)

	bounds := []Time{10, 100}
	a.Histogram("h", bounds).Observe(5)
	b.Histogram("h", bounds).Observe(50)
	b.Histogram("h", bounds).Observe(500)

	parent.Merge(a)
	parent.Merge(b)

	if v := parent.Counter("n").Value(); v != 7 {
		t.Fatalf("counter sum = %d, want 7", v)
	}
	if v := parent.Counter("only_b").Value(); v != 1 {
		t.Fatalf("only_b = %d, want 1", v)
	}
	if v := parent.Gauge("last").Value(); v != 20 {
		t.Fatalf("last-wins gauge = %d, want 20 (later merge wins)", v)
	}
	if v := parent.Gauge("hiwater").Value(); v != 50 {
		t.Fatalf("max gauge = %d, want 50", v)
	}
	h := parent.Histogram("h", bounds)
	if h.Count() != 3 || h.Sum() != 555 {
		t.Fatalf("hist count=%d sum=%d, want 3/555", h.Count(), h.Sum())
	}
	_, counts := h.Buckets()
	if counts[0] != 1 || counts[1] != 1 || counts[2] != 1 {
		t.Fatalf("bucket counts = %v, want one per bucket", counts)
	}
}

// TestMergeEqualsSerialRecording is the determinism contract the sweep
// engine relies on: splitting a recording stream across child registries
// and merging them in order must reproduce the exact bytes a single
// shared registry would have produced — including ring eviction, since
// the track capacity here is far below the record count.
func TestMergeEqualsSerialRecording(t *testing.T) {
	const capacity = 8
	serial := New(WithTrackCap(capacity))
	parent := New(WithTrackCap(capacity))

	record := func(r *Registry, runIdx int) {
		for i := 0; i < 20; i++ {
			at := Time(runIdx*1000 + i*10)
			r.Span(TrackRank, "rank-0", "op", at, at+5)
			if i%3 == 0 {
				r.InstantArg(TrackRank, "rank-1", "amo", "rdma", at, int64(i))
			}
			if i%5 == 0 {
				r.Span(TrackLink, "link-2", "xfer", at, at+2)
			}
			r.Counter("ops").Add(1)
			r.Gauge("final").SetMax(int64(at))
			r.Histogram("lat", DefaultLatencyBounds).Observe(int64(100 + i))
		}
	}

	for run := 0; run < 3; run++ {
		record(serial, run)
		child := parent.NewChild()
		record(child, run)
		parent.Merge(child)
	}

	if got, want := dumpAll(t, parent), dumpAll(t, serial); got != want {
		t.Fatalf("merged output differs from serial recording:\n--- merged ---\n%s\n--- serial ---\n%s", got, want)
	}
	if got, want := parent.EventsTotal(TrackRank), serial.EventsTotal(TrackRank); got != want {
		t.Fatalf("EventsTotal(rank) = %d, want %d", got, want)
	}
	if got, want := parent.EventsTotal(TrackLink), serial.EventsTotal(TrackLink); got != want {
		t.Fatalf("EventsTotal(link) = %d, want %d", got, want)
	}
}

func TestMergeNilSafe(t *testing.T) {
	var nilReg *Registry
	nilReg.Merge(New())           // no-op
	New().Merge(nil)              // no-op
	if nilReg.NewChild() != nil { // disabled parent -> disabled child
		t.Fatal("NewChild on nil registry should be nil")
	}
}

func TestMergeMismatchPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("track cap", func() {
		New(WithTrackCap(4)).Merge(New(WithTrackCap(8)))
	})
	mustPanic("hist bounds", func() {
		a, b := New(), New()
		a.Histogram("h", []Time{1, 2}).Observe(1)
		b.Histogram("h", []Time{1, 3}).Observe(1)
		a.Merge(b)
	})
}
