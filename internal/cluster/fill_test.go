package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fakePeer serves a canned /v1/results/{hash} response with a declared
// sha that may or may not match the body.
func fakePeer(t *testing.T, body []byte, declaredSHA string, status int) string {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/results/") {
			http.NotFound(w, r)
			return
		}
		if declaredSHA != "" {
			w.Header().Set(SHAHeader, declaredSHA)
		}
		w.Header().Set(ScenarioHeader, "micro")
		w.Header().Set(FormatHeader, "csv")
		w.WriteHeader(status)
		w.Write(body)
	}))
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://")
}

func TestFillerFetchVerified(t *testing.T) {
	body := []byte("procs,latency\n2,42\n")
	sum := sha256.Sum256(body)
	peer := fakePeer(t, body, hex.EncodeToString(sum[:]), http.StatusOK)

	res, err := NewFiller(time.Second).Fetch(context.Background(), peer, strings.Repeat("ab", 32))
	if err != nil {
		t.Fatalf("verified fetch failed: %v", err)
	}
	if string(res.Body) != string(body) || res.Scenario != "micro" || res.Format != "csv" {
		t.Errorf("fetch returned %+v", res)
	}
	if res.SHA256 != hex.EncodeToString(sum[:]) {
		t.Errorf("sha = %s", res.SHA256)
	}
}

// A peer declaring the wrong sha (corrupt store, truncated transfer)
// must be rejected — the fill layer never imports unverified bytes.
func TestFillerRejectsCorruptBytes(t *testing.T) {
	body := []byte("procs,latency\n2,42\n")
	wrong := sha256.Sum256([]byte("something else"))
	peer := fakePeer(t, body, hex.EncodeToString(wrong[:]), http.StatusOK)
	if _, err := NewFiller(time.Second).Fetch(context.Background(), peer, strings.Repeat("ab", 32)); err == nil {
		t.Fatal("corrupt fill accepted")
	}
}

func TestFillerRejectsMissingSHAHeader(t *testing.T) {
	peer := fakePeer(t, []byte("x"), "", http.StatusOK)
	if _, err := NewFiller(time.Second).Fetch(context.Background(), peer, strings.Repeat("ab", 32)); err == nil {
		t.Fatal("fill without a declared sha accepted")
	}
}

func TestFillerNotFound(t *testing.T) {
	peer := fakePeer(t, []byte("nope"), "", http.StatusNotFound)
	_, err := NewFiller(time.Second).Fetch(context.Background(), peer, strings.Repeat("ab", 32))
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestFillerDeadPeerFailsFast(t *testing.T) {
	t0 := time.Now()
	_, err := NewFiller(500 * time.Millisecond).Fetch(context.Background(),
		"127.0.0.1:1", strings.Repeat("ab", 32)) // port 1: nothing listens
	if err == nil {
		t.Fatal("fetch from dead peer succeeded")
	}
	if d := time.Since(t0); d > 5*time.Second {
		t.Errorf("dead-peer fetch took %v, want fast failure", d)
	}
}
