package cluster

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("key-%06d", i)
	}
	return out
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing("a", nil, 0); err == nil {
		t.Error("empty member list accepted")
	}
	if _, err := NewRing("a", []string{"b", "c"}, 0); err == nil {
		t.Error("self outside the peer list accepted")
	}
	if _, err := NewRing("a", []string{"a", ""}, 0); err == nil {
		t.Error("empty member accepted")
	}
	r, err := NewRing("a", []string{"b", "a", "b"}, 0)
	if err != nil {
		t.Fatalf("valid ring rejected: %v", err)
	}
	if got := r.Members(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("members = %v, want deduped sorted [a b]", got)
	}
	if r.Self() != "a" {
		t.Errorf("self = %q", r.Self())
	}
}

// Every replica must compute the same ring from the same peer list,
// regardless of list order: ownership is a pure function of (members,
// key).
func TestRingDeterministicAcrossListOrder(t *testing.T) {
	r1, _ := NewRing("m1", []string{"m1", "m2", "m3"}, 0)
	r2, _ := NewRing("m2", []string{"m3", "m1", "m2"}, 0)
	for _, k := range keys(500) {
		if r1.Owner(k) != r2.Owner(k) {
			t.Fatalf("rings disagree on owner of %s: %s vs %s", k, r1.Owner(k), r2.Owner(k))
		}
	}
}

// With 64 vnodes per member, no member's share of a large key set may be
// pathologically small — the ring actually spreads load.
func TestRingBalance(t *testing.T) {
	members := []string{"m1", "m2", "m3", "m4"}
	r, _ := NewRing("m1", members, 0)
	count := map[string]int{}
	ks := keys(8000)
	for _, k := range ks {
		count[r.Owner(k)]++
	}
	for _, m := range members {
		share := float64(count[m]) / float64(len(ks))
		if share < 0.08 {
			t.Errorf("member %s owns %.1f%% of keys (count %v) — ring badly unbalanced", m, 100*share, count)
		}
	}
}

// The consistency property that justifies the ring: removing one member
// only reassigns the keys it owned; everything owned by survivors stays
// put. A plain mod-N hash would reshuffle almost everything.
func TestRingConsistencyOnMemberLoss(t *testing.T) {
	full, _ := NewRing("m1", []string{"m1", "m2", "m3"}, 0)
	reduced, _ := NewRing("m1", []string{"m1", "m3"}, 0)
	moved := 0
	for _, k := range keys(4000) {
		was := full.Owner(k)
		now := reduced.Owner(k)
		if was != "m2" && was != now {
			t.Fatalf("key %s owned by surviving %s moved to %s after m2 left", k, was, now)
		}
		if was == "m2" {
			moved++
		}
	}
	if moved == 0 {
		t.Error("m2 owned no keys out of 4000 — balance test should have caught this")
	}
}

func TestRingSuccessors(t *testing.T) {
	r, _ := NewRing("m1", []string{"m1", "m2", "m3"}, 0)
	for _, k := range keys(200) {
		succ := r.Successors(k)
		if len(succ) != 3 {
			t.Fatalf("successors of %s = %v, want all 3 members", k, succ)
		}
		if succ[0] != r.Owner(k) {
			t.Fatalf("successors of %s start with %s, want owner %s", k, succ[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, m := range succ {
			if seen[m] {
				t.Fatalf("successors of %s repeat %s: %v", k, m, succ)
			}
			seen[m] = true
		}
	}
}
