package cluster

// fill.go is the peer cache-fill client: an idempotent, byte-verified
// GET against another replica's /v1/results/{hash} endpoint. The
// endpoint only ever serves already-materialized artifacts (hot LRU or
// disk store) — it never triggers execution — so a fill probe is cheap
// on both sides and can never recurse.
//
// Trust model: the fetching replica verifies the payload itself. The
// owner declares the artifact's SHA-256 in a response header; the filler
// re-hashes the received bytes and refuses anything that does not match,
// so a truncated transfer or a corrupt peer store entry is dropped at
// the importing side and falls through to cold execution instead of
// poisoning the local cache.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"
)

// Wire headers of the result-fill protocol.
const (
	// SHAHeader declares the artifact's SHA-256 (hex) on a
	// /v1/results/{hash} response; the filler verifies against it.
	SHAHeader = "X-Artifact-SHA256"
	// ScenarioHeader carries the stored artifact's scenario label.
	ScenarioHeader = "X-Scenario"
	// FormatHeader carries the stored artifact's render format.
	FormatHeader = "X-Artifact-Format"
)

// ErrNotFound reports that the peer answered but does not hold the key.
var ErrNotFound = errors.New("cluster: peer does not hold this key")

// maxFillBytes bounds one fill transfer; anything larger than the
// default serve cache budget is not worth pulling over a fill.
const maxFillBytes = 256 << 20

// Result is one successfully fetched and verified artifact.
type Result struct {
	Body     []byte
	Scenario string
	Format   string
	SHA256   string // hex, re-computed locally
}

// Filler fetches results from peers. Safe for concurrent use.
type Filler struct {
	client *http.Client
}

// NewFiller builds a fill client. timeout bounds one whole fill attempt
// (dial + transfer); fills are small localhost/LAN transfers, so a dead
// or wedged peer must fail fast enough that falling back to cold
// execution stays cheap.
func NewFiller(timeout time.Duration) *Filler {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return &Filler{client: &http.Client{
		Timeout: timeout,
		Transport: &http.Transport{
			DialContext:         (&net.Dialer{Timeout: timeout}).DialContext,
			MaxIdleConnsPerHost: 4,
		},
	}}
}

// Fetch pulls key from peer and verifies the bytes. Returns ErrNotFound
// when the peer answers 404 (it simply does not hold the key); any
// verification failure is an explicit error so callers can count it.
func (f *Filler) Fetch(ctx context.Context, peer, key string) (Result, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		"http://"+peer+"/v1/results/"+key, nil)
	if err != nil {
		return Result{}, err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return Result{}, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		return Result{}, ErrNotFound
	case resp.StatusCode != http.StatusOK:
		return Result{}, fmt.Errorf("cluster: peer %s answered HTTP %d for %s", peer, resp.StatusCode, key)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxFillBytes+1))
	if err != nil {
		return Result{}, fmt.Errorf("cluster: fill transfer from %s: %w", peer, err)
	}
	if len(body) > maxFillBytes {
		return Result{}, fmt.Errorf("cluster: fill from %s exceeds %d bytes", peer, maxFillBytes)
	}
	sum := sha256.Sum256(body)
	sha := hex.EncodeToString(sum[:])
	declared := resp.Header.Get(SHAHeader)
	if declared == "" {
		return Result{}, fmt.Errorf("cluster: peer %s sent no %s header", peer, SHAHeader)
	}
	if declared != sha {
		return Result{}, fmt.Errorf("cluster: fill from %s corrupt: declared sha %.12s, got %.12s", peer, declared, sha)
	}
	return Result{
		Body:     body,
		Scenario: resp.Header.Get(ScenarioHeader),
		Format:   resp.Header.Get(FormatHeader),
		SHA256:   sha,
	}, nil
}
