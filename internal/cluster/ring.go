// Package cluster is the scale-out fabric for the serving layer: a
// replicated consistent-hash ring that partitions the content-addressed
// job-key space across a static set of simd replicas, plus the
// byte-verified peer cache-fill client the replicas use to pull each
// other's results.
//
// The design mirrors the paper's PGAS partitioning move: ownership of
// the global address space (here, the config-hash key space) is split
// statically across units, and remote access stays one-sided and cheap
// (an idempotent GET against the owner, no coherence protocol). Because
// every result is a pure function of its key — the determinism goldens
// pin byte-identical artifacts for a config at any replica — any replica
// is authoritative for any key it holds: routing is purely a capacity
// and locality optimization, never a correctness requirement. A replica
// that cannot reach a key's owner may execute the job itself and serve
// bytes indistinguishable from the owner's.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
)

// DefaultVnodes is the virtual-node replication factor: how many points
// each member contributes to the ring. 64 points per member keeps the
// largest/smallest ownership arc within a few percent of even for small
// fleets while the ring stays tiny (N*64 entries).
const DefaultVnodes = 64

// ForwardHeader marks a request that has already been routed once.
// A replica receiving it serves the job locally no matter what its own
// ring says, so disagreeing ring views (or a stale peer list) can never
// bounce a request around the fleet.
const ForwardHeader = "X-Cluster-From"

// point is one virtual node: a position on the 64-bit hash circle owned
// by a member.
type point struct {
	h      uint64
	member string
}

// Ring is an immutable replicated consistent-hash ring over a static
// member list. Safe for concurrent use (it is never mutated after New).
type Ring struct {
	self    string
	members []string // sorted, unique
	points  []point  // sorted by (h, member)
}

// NewRing builds the ring. self must appear in members (every replica
// carries the full fleet list, itself included, so all replicas compute
// identical rings). vnodes <= 0 selects DefaultVnodes.
func NewRing(self string, members []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := make(map[string]bool, len(members))
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty member in peer list")
		}
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("cluster: no members")
	}
	if !seen[self] {
		return nil, fmt.Errorf("cluster: self %q not in peer list %v", self, uniq)
	}
	sort.Strings(uniq)
	points := make([]point, 0, len(uniq)*vnodes)
	for _, m := range uniq {
		for i := 0; i < vnodes; i++ {
			points = append(points, point{h: pointHash(m, i), member: m})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].h != points[j].h {
			return points[i].h < points[j].h
		}
		return points[i].member < points[j].member
	})
	return &Ring{self: self, members: uniq, points: points}, nil
}

// pointHash places virtual node i of a member on the circle. SHA-256
// (not a fast non-crypto hash) because ring agreement across separately
// started processes is worth more than nanoseconds on a once-per-request
// lookup.
func pointHash(member string, i int) uint64 {
	sum := sha256.Sum256([]byte(member + "#" + strconv.Itoa(i)))
	return binary.BigEndian.Uint64(sum[:8])
}

// keyHash places a job key on the circle. Keys are already hex SHA-256
// config hashes, but hashing the string again costs nothing and keeps
// the placement independent of the key encoding.
func keyHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Self returns this replica's own member name.
func (r *Ring) Self() string { return r.self }

// Members returns the full fleet, sorted. The slice is shared; treat it
// as immutable.
func (r *Ring) Members() []string { return r.members }

// Owner returns the member owning key: the first virtual node at or
// clockwise after the key's position.
func (r *Ring) Owner(key string) string {
	return r.points[r.ownerIdx(key)].member
}

func (r *Ring) ownerIdx(key string) int {
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Successors returns every member in ring order starting at key's owner:
// the preference order for fetching key from the fleet. The owner comes
// first; each later entry is the next distinct member clockwise, so a
// dead owner degrades to the replica most likely to have taken the key
// over.
func (r *Ring) Successors(key string) []string {
	out := make([]string, 0, len(r.members))
	seen := make(map[string]bool, len(r.members))
	for i, n := r.ownerIdx(key), len(r.points); len(out) < len(r.members); i++ {
		m := r.points[i%n].member
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}
