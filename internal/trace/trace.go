// Package trace is the legacy protocol-event recorder API, kept for the
// layers and tests that predate the unified observability registry. It is
// now a thin shim over internal/obs: records land as instant events on
// per-rank trace tracks of a private registry, so the ring-buffer
// retention, ordering, and totals all come from one implementation.
// Tracing is off unless a Recorder is installed, and costs nothing in
// virtual time. New code should take an *obs.Registry directly.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Kind classifies trace records.
type Kind uint8

const (
	// RDMA marks a one-sided transfer (put/get data movement).
	RDMA Kind = iota
	// AM marks an active-message send or dispatch.
	AM
	// Progress marks a progress-engine pass.
	Progress
	// Fence marks synchronization operations.
	Fence
	// App marks application-level annotations.
	App
)

func (k Kind) String() string {
	switch k {
	case RDMA:
		return "rdma"
	case AM:
		return "am"
	case Progress:
		return "progress"
	case Fence:
		return "fence"
	case App:
		return "app"
	}
	return "?"
}

// kindOf inverts Kind.String for records coming back out of the registry.
func kindOf(cat string) Kind {
	switch cat {
	case "rdma":
		return RDMA
	case "am":
		return AM
	case "progress":
		return Progress
	case "fence":
		return Fence
	}
	return App
}

// Record is one trace entry.
type Record struct {
	At   sim.Time
	Rank int
	Kind Kind
	What string
	Arg  int64
}

// Recorder collects records into a fixed-capacity ring per rank, so long
// simulations keep the most recent window instead of exhausting memory.
// It is backed by a private obs.Registry whose per-track capacity is the
// per-rank limit.
type Recorder struct {
	reg *obs.Registry
}

// NewRecorder builds a recorder keeping up to perRank records per rank.
func NewRecorder(perRank int) *Recorder {
	if perRank <= 0 {
		panic("trace: non-positive capacity")
	}
	return &Recorder{reg: obs.New(obs.WithTrackCap(perRank))}
}

// Add appends a record for rank.
func (r *Recorder) Add(at sim.Time, rank int, kind Kind, what string, arg int64) {
	r.reg.InstantArg(obs.TrackRank, strconv.Itoa(rank), what, kind.String(), at, arg)
}

// Total returns how many records were ever added (including evicted).
func (r *Recorder) Total() uint64 { return r.reg.EventsTotal(obs.TrackRank) }

// collect converts matching retained events to records in (time, rank)
// order. Filtering happens before any sorting, so selective views never
// pay for the full snapshot.
func (r *Recorder) collect(match func(obs.Event) bool) []Record {
	evs := r.reg.Events(obs.TrackRank, match)
	out := make([]Record, 0, len(evs))
	for _, e := range evs {
		rank, _ := strconv.Atoi(e.Track)
		out = append(out, Record{
			At:   e.Start,
			Rank: rank,
			Kind: kindOf(e.Cat),
			What: e.Name,
			Arg:  e.Arg,
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Rank < out[j].Rank
	})
	return out
}

// Snapshot returns all retained records in (time, rank) order.
func (r *Recorder) Snapshot() []Record {
	return r.collect(nil)
}

// Filter returns retained records of one kind, time-ordered.
func (r *Recorder) Filter(kind Kind) []Record {
	cat := kind.String()
	return r.collect(func(e obs.Event) bool { return e.Cat == cat })
}

// Dump renders the retained window as a time-ordered log.
func (r *Recorder) Dump(w io.Writer) {
	for _, rec := range r.Snapshot() {
		fmt.Fprintf(w, "%12s  r%-4d %-8s %s (%d)\n",
			sim.FormatTime(rec.At), rec.Rank, rec.Kind, rec.What, rec.Arg)
	}
}
