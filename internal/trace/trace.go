// Package trace is a lightweight, allocation-bounded event recorder for
// the simulation stack: protocol layers append typed records into a ring
// buffer, and tools render time-ordered views for debugging protocol
// interleavings (who advanced which context when, which path a transfer
// took). Tracing is off unless a Recorder is installed, and costs nothing
// in virtual time.
package trace

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// Kind classifies trace records.
type Kind uint8

const (
	// RDMA marks a one-sided transfer (put/get data movement).
	RDMA Kind = iota
	// AM marks an active-message send or dispatch.
	AM
	// Progress marks a progress-engine pass.
	Progress
	// Fence marks synchronization operations.
	Fence
	// App marks application-level annotations.
	App
)

func (k Kind) String() string {
	switch k {
	case RDMA:
		return "rdma"
	case AM:
		return "am"
	case Progress:
		return "progress"
	case Fence:
		return "fence"
	case App:
		return "app"
	}
	return "?"
}

// Record is one trace entry.
type Record struct {
	At   sim.Time
	Rank int
	Kind Kind
	What string
	Arg  int64
}

// Recorder collects records into a fixed-capacity ring per rank, so long
// simulations keep the most recent window instead of exhausting memory.
type Recorder struct {
	cap   int
	rings map[int][]Record
	heads map[int]int
	total uint64
}

// NewRecorder builds a recorder keeping up to perRank records per rank.
func NewRecorder(perRank int) *Recorder {
	if perRank <= 0 {
		panic("trace: non-positive capacity")
	}
	return &Recorder{
		cap:   perRank,
		rings: make(map[int][]Record),
		heads: make(map[int]int),
	}
}

// Add appends a record for rank.
func (r *Recorder) Add(at sim.Time, rank int, kind Kind, what string, arg int64) {
	rec := Record{At: at, Rank: rank, Kind: kind, What: what, Arg: arg}
	ring := r.rings[rank]
	if len(ring) < r.cap {
		r.rings[rank] = append(ring, rec)
	} else {
		ring[r.heads[rank]] = rec
		r.heads[rank] = (r.heads[rank] + 1) % r.cap
	}
	r.total++
}

// Total returns how many records were ever added (including evicted).
func (r *Recorder) Total() uint64 { return r.total }

// Snapshot returns all retained records in (time, rank) order.
func (r *Recorder) Snapshot() []Record {
	var out []Record
	for _, ring := range r.rings {
		out = append(out, ring...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Rank < out[j].Rank
	})
	return out
}

// Filter returns retained records of one kind, time-ordered.
func (r *Recorder) Filter(kind Kind) []Record {
	var out []Record
	for _, rec := range r.Snapshot() {
		if rec.Kind == kind {
			out = append(out, rec)
		}
	}
	return out
}

// Dump renders the retained window as a time-ordered log.
func (r *Recorder) Dump(w io.Writer) {
	for _, rec := range r.Snapshot() {
		fmt.Fprintf(w, "%12s  r%-4d %-8s %s (%d)\n",
			sim.FormatTime(rec.At), rec.Rank, rec.Kind, rec.What, rec.Arg)
	}
}
