package trace

import (
	"strings"
	"testing"
)

func TestRecorderOrdersSnapshot(t *testing.T) {
	r := NewRecorder(16)
	r.Add(300, 1, RDMA, "put", 64)
	r.Add(100, 0, AM, "rmw", 1)
	r.Add(200, 2, Progress, "advance", 3)
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("len = %d", len(snap))
	}
	if snap[0].At != 100 || snap[1].At != 200 || snap[2].At != 300 {
		t.Fatalf("order: %+v", snap)
	}
}

func TestRecorderRingEvicts(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Add(int64(i), 0, App, "x", int64(i))
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("retained %d, want 4", len(snap))
	}
	// The most recent four survive.
	for _, rec := range snap {
		if rec.Arg < 6 {
			t.Fatalf("old record survived: %+v", rec)
		}
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d", r.Total())
	}
}

func TestFilterAndDump(t *testing.T) {
	r := NewRecorder(16)
	r.Add(1, 0, RDMA, "get", 16)
	r.Add(2, 0, Fence, "fence", 1)
	r.Add(3, 1, RDMA, "put", 32)
	if got := r.Filter(RDMA); len(got) != 2 {
		t.Fatalf("rdma records = %d", len(got))
	}
	var sb strings.Builder
	r.Dump(&sb)
	out := sb.String()
	for _, want := range []string{"rdma", "fence", "get", "put"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestKindStrings(t *testing.T) {
	kinds := map[Kind]string{RDMA: "rdma", AM: "am", Progress: "progress",
		Fence: "fence", App: "app", Kind(99): "?"}
	for k, want := range kinds {
		if k.String() != want {
			t.Fatalf("%v", k)
		}
	}
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRecorder(0)
}
