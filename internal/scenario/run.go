package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/bench"
	"repro/internal/sweep"
)

// PhaseResult pairs a phase's pattern name with its rendered grid.
type PhaseResult struct {
	Pattern string
	Grid    *bench.Grid
}

// Result is a completed composed run: one grid per phase, in spec
// order.
type Result struct {
	Phases []PhaseResult
}

// Run canonicalizes sp and executes its phases sequentially on eng.
// Each phase fans its independent simulations across the engine's
// workers (and each simulation across its lane shards), so the result
// is byte-identical at any worker or shard count. A non-nil error is
// either a *SpecError (invalid spec; nothing ran) or ctx's error (the
// run was cut short; the partial result must not be cached or served).
func Run(ctx context.Context, eng *sweep.Engine, sp Spec) (*Result, error) {
	canon, err := sp.Canon()
	if err != nil {
		return nil, err
	}
	res := &Result{}
	for i := range canon.Phases {
		ph := &canon.Phases[i]
		pat, _ := lookupPattern(ph.Pattern)
		res.Phases = append(res.Phases, PhaseResult{
			Pattern: ph.Pattern,
			Grid:    pat.run(ctx, eng, ph),
		})
		if ctx.Err() != nil {
			return res, ctx.Err()
		}
	}
	return res, nil
}

// Render writes the composed result in the given format (csv, text, or
// json), phases in order with explicit separators. Rendering is a pure
// function of the grids, so cached bytes equal cold bytes.
func (r *Result) Render(w io.Writer, format string) error {
	switch format {
	case "csv":
		for i, p := range r.Phases {
			if i > 0 {
				fmt.Fprintln(w)
			}
			fmt.Fprintf(w, "# phase %d: %s\n", i, p.Pattern)
			p.Grid.RenderCSV(w)
		}
		return nil
	case "text":
		for i, p := range r.Phases {
			if i > 0 {
				fmt.Fprintln(w)
			}
			fmt.Fprintf(w, "-- phase %d: %s --\n", i, p.Pattern)
			p.Grid.Render(w)
		}
		return nil
	case "json":
		type phaseDoc struct {
			Pattern string          `json:"pattern"`
			Grid    json.RawMessage `json:"grid"`
		}
		doc := struct {
			Phases []phaseDoc `json:"phases"`
		}{Phases: make([]phaseDoc, 0, len(r.Phases))}
		for _, p := range r.Phases {
			var buf bytes.Buffer
			if err := p.Grid.RenderJSON(&buf); err != nil {
				return err
			}
			doc.Phases = append(doc.Phases, phaseDoc{
				Pattern: p.Pattern,
				Grid:    json.RawMessage(bytes.TrimRight(buf.Bytes(), "\n")),
			})
		}
		return json.NewEncoder(w).Encode(doc)
	}
	return fmt.Errorf("unknown format %q", format)
}
