package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/sweep"
)

func mustCanon(t *testing.T, body string) Spec {
	t.Helper()
	sp, err := Parse(strings.NewReader(body))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	canon, err := sp.Canon()
	if err != nil {
		t.Fatalf("canon: %v", err)
	}
	return canon
}

func canonJSON(t *testing.T, sp Spec) string {
	t.Helper()
	b, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// Two spellings of the same composed scenario — defaults omitted vs
// spelled out, axes reordered — must canonicalize to identical JSON
// (and therefore the same serving-layer key).
func TestCanonTwoSpellings(t *testing.T) {
	terse := mustCanon(t, `{"phases":[
		{"pattern":"fetchadd"},
		{"pattern":"ping","fault":{"events":[
			{"kind":"delay","start_us":30000,"dur_us":1000,"prob":0.5,"delay_us":5},
			{"kind":"link_down","start_us":30000,"dur_us":100}]}}
	]}`)
	spelled := mustCanon(t, `{"version":1,"phases":[
		{"pattern":"fetchadd",
		 "params":{"ops_each":8,"compute":false},
		 "topology":{"procs":[64,2,16],"per_node":16},
		 "engine":{"mode":"both"}},
		{"pattern":"ping",
		 "params":{"iters":5},
		 "sizes":{"kind":"sweep","min_bytes":16,"max_bytes":65536},
		 "engine":{"mode":"async"},
		 "fault":{"seed":42,"events":[
			{"kind":"link_down","link":-1,"start_us":30000,"dur_us":100},
			{"kind":"delay","src":-1,"dst":-1,"start_us":30000,"dur_us":1000,"prob":0.5,"delay_us":5}]}}
	]}`)
	a, b := canonJSON(t, terse), canonJSON(t, spelled)
	if a != b {
		t.Errorf("canonical forms differ:\n  terse:   %s\n  spelled: %s", a, b)
	}
}

// Canon must be idempotent: the canonical form re-canonicalizes to
// itself, byte for byte.
func TestCanonIdempotent(t *testing.T) {
	c1 := mustCanon(t, `{"phases":[
		{"pattern":"dgemm"},
		{"pattern":"ping","sizes":{"kind":"mixture","points":[
			{"bytes":4096},{"bytes":64,"weight":8}]},
		 "fault":{"events":[{"kind":"link_down","start_us":30000,"dur_us":50}]}}]}`)
	c2, err := c1.Canon()
	if err != nil {
		t.Fatalf("re-canon: %v", err)
	}
	if a, b := canonJSON(t, c1), canonJSON(t, c2); a != b {
		t.Errorf("canon not idempotent:\n  once:  %s\n  twice: %s", a, b)
	}
}

// Malformed specs must fail with a SpecError naming the offending
// field.
func TestCanonValidationTable(t *testing.T) {
	cases := []struct {
		name, body, field string
	}{
		{"no phases", `{"phases":[]}`, "phases"},
		{"unknown pattern", `{"phases":[{"pattern":"warp"}]}`, "phases[0].pattern"},
		{"bad version", `{"version":3,"phases":[{"pattern":"ping"}]}`, "version"},
		{"unknown param", `{"phases":[{"pattern":"ping","params":{"width":3}}]}`,
			"phases[0].params.width"},
		{"param type", `{"phases":[{"pattern":"ping","params":{"iters":"many"}}]}`,
			"phases[0].params.iters"},
		{"param bounds", `{"phases":[{"pattern":"fetchadd","params":{"ops_each":100000}}]}`,
			"phases[0].params.ops_each"},
		{"out-of-bounds procs", `{"phases":[{"pattern":"worksteal","topology":{"procs":[100000]}}]}`,
			"phases[0].topology.procs"},
		{"duplicate procs", `{"phases":[{"pattern":"worksteal","topology":{"procs":[4,4]}}]}`,
			"phases[0].topology.procs"},
		{"sizes on sizeless pattern", `{"phases":[{"pattern":"halo","sizes":{"kind":"fixed","bytes":64}}]}`,
			"phases[0].sizes"},
		{"procs on fixed-topology pattern", `{"phases":[{"pattern":"ping","topology":{"procs":[2]}}]}`,
			"phases[0].topology"},
		{"derived procs", `{"phases":[{"pattern":"halo","topology":{"procs":[8]}}]}`,
			"phases[0].topology.procs"},
		{"consistency on non-dgemm", `{"phases":[{"pattern":"ping","engine":{"consistency":"both"}}]}`,
			"phases[0].engine.consistency"},
		{"mode on dgemm", `{"phases":[{"pattern":"dgemm","engine":{"mode":"both"}}]}`,
			"phases[0].engine.mode"},
		{"bad mode", `{"phases":[{"pattern":"ping","engine":{"mode":"turbo"}}]}`,
			"phases[0].engine.mode"},
		{"bad size kind", `{"phases":[{"pattern":"ping","sizes":{"kind":"zipf"}}]}`,
			"phases[0].sizes.kind"},
		{"size bounds", `{"phases":[{"pattern":"ping","sizes":{"kind":"fixed","bytes":4}}]}`,
			"phases[0].sizes.bytes"},
		{"mixed dist fields", `{"phases":[{"pattern":"ping","sizes":{"kind":"fixed","bytes":64,"min_bytes":16}}]}`,
			"phases[0].sizes"},
		{"non-power-of-two sweep", `{"phases":[{"pattern":"ping","sizes":{"kind":"sweep","min_bytes":24,"max_bytes":64}}]}`,
			"phases[0].sizes.min_bytes"},
		{"duplicate mixture size", `{"phases":[{"pattern":"ping","sizes":{"kind":"mixture","points":[{"bytes":64},{"bytes":64}]}}]}`,
			"phases[0].sizes.points"},
		{"fault on faultless pattern", `{"phases":[{"pattern":"halo","fault":{"events":[{"kind":"link_down","start_us":0,"dur_us":1}]}}]}`,
			"phases[0].fault"},
		{"empty fault", `{"phases":[{"pattern":"ping","fault":{"events":[]}}]}`,
			"phases[0].fault.events"},
		{"bad fault kind", `{"phases":[{"pattern":"ping","fault":{"events":[{"kind":"meteor","start_us":0,"dur_us":1}]}}]}`,
			"phases[0].fault.events[0].kind"},
		{"bad fault window", `{"phases":[{"pattern":"ping","fault":{"events":[{"kind":"link_down","start_us":100,"dur_us":0}]}}]}`,
			"phases[0].fault.events[0].dur_us"},
		{"bad fault prob", `{"phases":[{"pattern":"ping","fault":{"events":[{"kind":"delay","start_us":0,"dur_us":1,"prob":1.5,"delay_us":5}]}}]}`,
			"phases[0].fault.events[0].prob"},
		{"fault field misuse", `{"phases":[{"pattern":"ping","fault":{"events":[{"kind":"link_down","start_us":0,"dur_us":1,"prob":0.5}]}}]}`,
			"phases[0].fault.events[0].prob"},
		{"tile divides n", `{"phases":[{"pattern":"dgemm","params":{"n":48,"tile":9}}]}`,
			"phases[0].params.tile"},
		{"halo too small", `{"phases":[{"pattern":"halo","params":{"tiles_x":1,"tiles_y":1}}]}`,
			"phases[0].params.tiles_y"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp, err := Parse(strings.NewReader(tc.body))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			_, err = sp.Canon()
			if err == nil {
				t.Fatal("canon accepted a malformed spec")
			}
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("error is %T, want *SpecError: %v", err, err)
			}
			if se.Field != tc.field {
				t.Errorf("field = %q, want %q (hint: %s)", se.Field, tc.field, se.Hint)
			}
		})
	}
}

// composeTestSpec is a small two-phase spec (one promoted example
// pattern, one legacy figure pattern with a fault plan) sized for test
// latency.
const composeTestSpec = `{"phases":[
	{"pattern":"halo","params":{"tiles_x":2,"tiles_y":1,"tile_n":8,"iters":3},
	 "topology":{"per_node":2},"engine":{"mode":"async"}},
	{"pattern":"fetchadd","params":{"ops_each":3},
	 "topology":{"procs":[4],"per_node":4},"engine":{"mode":"default"},
	 "fault":{"seed":7,"events":[
		{"kind":"link_down","start_us":30050,"dur_us":100},
		{"kind":"delay","start_us":30000,"dur_us":2000,"prob":0.1,"delay_us":5}]}}
]}`

func renderComposed(t *testing.T, workers, shards int, format string) []byte {
	t.Helper()
	sp, err := Parse(strings.NewReader(composeTestSpec))
	if err != nil {
		t.Fatal(err)
	}
	eng := sweep.NewSharded(workers, shards, nil)
	res, err := Run(context.Background(), eng, sp)
	if err != nil {
		t.Fatalf("run (workers=%d shards=%d): %v", workers, shards, err)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf, format); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// A composed run must render byte-identically at every sweep-worker and
// lane-shard count — the invariant that lets the serving layer cache
// composed results under a content address.
func TestComposedWorkerShardInvariance(t *testing.T) {
	base := renderComposed(t, 1, 1, "csv")
	if len(base) == 0 {
		t.Fatal("empty artifact")
	}
	for _, wk := range []struct{ workers, shards int }{{4, 1}, {1, 4}, {4, 4}} {
		got := renderComposed(t, wk.workers, wk.shards, "csv")
		if !bytes.Equal(base, got) {
			t.Errorf("workers=%d shards=%d: bytes differ from serial run",
				wk.workers, wk.shards)
		}
	}
}

// Every format renders, and the JSON form is one well-formed document
// with one entry per phase.
func TestComposedFormats(t *testing.T) {
	for _, format := range []string{"csv", "text", "json"} {
		b := renderComposed(t, 2, 1, format)
		if len(b) == 0 {
			t.Errorf("%s: empty artifact", format)
		}
	}
	var doc struct {
		Phases []struct {
			Pattern string          `json:"pattern"`
			Grid    json.RawMessage `json:"grid"`
		} `json:"phases"`
	}
	if err := json.Unmarshal(renderComposed(t, 2, 1, "json"), &doc); err != nil {
		t.Fatalf("json artifact: %v", err)
	}
	if len(doc.Phases) != 2 || doc.Phases[0].Pattern != "halo" || doc.Phases[1].Pattern != "fetchadd" {
		t.Errorf("unexpected phase structure: %+v", doc.Phases)
	}
}

// The remaining promoted patterns run end to end with their defaults
// scaled down.
func TestPromotedPatternsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second composed run")
	}
	spec := `{"phases":[
		{"pattern":"worksteal","params":{"tasks":24},"topology":{"procs":[4],"per_node":4},
		 "engine":{"mode":"both"}},
		{"pattern":"dgemm","params":{"n":24,"tile":12},"topology":{"procs":[4],"per_node":4}},
		{"pattern":"ping","sizes":{"kind":"mixture","points":[{"bytes":64,"weight":4},{"bytes":4096}]},
		 "params":{"iters":2},"engine":{"mode":"async"}}
	]}`
	sp, err := Parse(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), sweep.New(2, nil), sp)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf, "text"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"worksteal", "dgemm", "ping", "verified", "weighted mean"} {
		if !strings.Contains(out, want) {
			t.Errorf("text artifact missing %q", want)
		}
	}
	if strings.Contains(out, "NO") {
		t.Errorf("dgemm verification failed:\n%s", out)
	}
}
