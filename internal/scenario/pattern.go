package scenario

import (
	"context"
	"sort"

	"repro/internal/armci"
	"repro/internal/bench"
	"repro/internal/sweep"
)

// Axes declares which orthogonal spec axes a pattern consumes. Setting
// an axis the pattern does not consume is a validation error — a
// dropped axis would alias two different-looking specs onto one hash.
type Axes struct {
	Sizes       bool `json:"sizes"`
	Procs       bool `json:"procs"`
	PerNode     bool `json:"per_node"`
	Mode        bool `json:"mode"`
	Consistency bool `json:"consistency"`
	Fault       bool `json:"fault"`
}

// pattern is one registered traffic pattern: its parameter schema, the
// axes it consumes with their defaults, an optional cross-field check,
// and the engine-explicit runner (called with a canonical phase).
type pattern struct {
	Name   string
	Doc    string
	Schema bench.Schema
	Axes   Axes

	DefaultSizes    *SizeDist
	DefaultTopology TopologySpec
	DefaultEngine   EngineSpec

	// Check validates cross-parameter constraints the schema cannot
	// express (e.g. tile must divide n). field is the phase's locator
	// prefix.
	Check func(ph *PhaseSpec, field string) error

	run func(ctx context.Context, eng *sweep.Engine, ph *PhaseSpec) *bench.Grid
}

// patterns is the composition registry. The five entries cover the
// paper's traffic shapes: the Fig 3 ping and Fig 9 fetch-and-add
// micro-kernels plus the three promoted examples (halo exchange,
// work-stealing, dgemm).
var patterns = map[string]*pattern{
	"ping": {
		Name: "ping",
		Doc:  "Fig 3-style contiguous get/put latency between two adjacent nodes",
		Schema: bench.Schema{
			bench.IntParam("iters", "repetitions per size point", 5, 1, bench.MaxIters),
		},
		Axes:         Axes{Sizes: true, Mode: true, Fault: true},
		DefaultSizes: &SizeDist{Kind: "sweep", MinBytes: 16, MaxBytes: 65536},
		DefaultEngine: EngineSpec{
			Mode: "async",
		},
		run: func(ctx context.Context, eng *sweep.Engine, ph *PhaseSpec) *bench.Grid {
			sizes, weights := ph.Sizes.resolve()
			return bench.PingGrid(ctx, eng, bench.PingSpec{
				Sizes:   sizes,
				Weights: weights,
				Iters:   ph.Params.Int("iters"),
				Modes:   ph.Engine.modes(),
				Fault:   ph.Fault.factory(),
				Seed:    ph.Fault.seed(),
			})
		},
	},
	"fetchadd": {
		Name: "fetchadd",
		Doc:  "Fig 9-style fetch-and-add on a rank-0 counter hammered by all other ranks",
		Schema: bench.Schema{
			bench.IntParam("ops_each", "fetch-and-add ops per worker rank", 8, 1, bench.MaxOpsEach),
			bench.BoolParam("compute", "rank 0 computes in 300 us chunks between progress calls", false),
		},
		Axes:            Axes{Procs: true, PerNode: true, Mode: true, Fault: true},
		DefaultTopology: TopologySpec{Procs: []int{2, 16, 64}, PerNode: 16},
		DefaultEngine:   EngineSpec{Mode: "both"},
		run: func(ctx context.Context, eng *sweep.Engine, ph *PhaseSpec) *bench.Grid {
			return bench.FetchAddGrid(ctx, eng, bench.FetchAddSpec{
				Procs:   ph.Topology.Procs,
				PerNode: ph.Topology.PerNode,
				OpsEach: ph.Params.Int("ops_each"),
				Compute: ph.Params.Bool("compute"),
				Modes:   ph.Engine.modes(),
				Fault:   ph.Fault.factory(),
				Seed:    ph.Fault.seed(),
			})
		},
	},
	"halo": {
		Name: "halo",
		Doc:  "2-D Jacobi halo exchange: contiguous row halos (RDMA) + strided column halos (typed)",
		Schema: bench.Schema{
			bench.IntParam("tiles_x", "process grid width", 4, 1, 8),
			bench.IntParam("tiles_y", "process grid height", 2, 1, 8),
			bench.IntParam("tile_n", "interior cells per tile side", 32, 4, 128),
			bench.IntParam("iters", "Jacobi iterations", 20, 1, bench.MaxIters),
		},
		Axes:            Axes{PerNode: true, Mode: true},
		DefaultTopology: TopologySpec{PerNode: 16},
		DefaultEngine:   EngineSpec{Mode: "async"},
		Check: func(ph *PhaseSpec, field string) error {
			procs := ph.Params.Int("tiles_x") * ph.Params.Int("tiles_y")
			if procs < bench.MinProcs {
				return errf(field+".params.tiles_y",
					"tiles_x*tiles_y must be at least %d ranks (got %d)", bench.MinProcs, procs)
			}
			return nil
		},
		run: func(ctx context.Context, eng *sweep.Engine, ph *PhaseSpec) *bench.Grid {
			return bench.HaloGrid(ctx, eng, bench.HaloSpec{
				TilesX:  ph.Params.Int("tiles_x"),
				TilesY:  ph.Params.Int("tiles_y"),
				TileN:   ph.Params.Int("tile_n"),
				Iters:   ph.Params.Int("iters"),
				PerNode: ph.Topology.PerNode,
				Modes:   ph.Engine.modes(),
			})
		},
	},
	"worksteal": {
		Name: "worksteal",
		Doc:  "dynamic load balancing: skewed task pool handed out by rank-0 fetch-and-add",
		Schema: bench.Schema{
			bench.IntParam("tasks", "tasks in the pool", 256, 1, 4096),
		},
		Axes:            Axes{Procs: true, PerNode: true, Mode: true},
		DefaultTopology: TopologySpec{Procs: []int{16}, PerNode: 16},
		DefaultEngine:   EngineSpec{Mode: "both"},
		run: func(ctx context.Context, eng *sweep.Engine, ph *PhaseSpec) *bench.Grid {
			return bench.WorkStealGrid(ctx, eng, bench.WorkStealSpec{
				Procs:   ph.Topology.Procs,
				PerNode: ph.Topology.PerNode,
				Tasks:   ph.Params.Int("tasks"),
				Modes:   ph.Engine.modes(),
			})
		},
	},
	"dgemm": {
		Name: "dgemm",
		Doc:  "distributed C = A x B over Global Arrays, exact-verified, consistency-mode ablation",
		Schema: bench.Schema{
			bench.IntParam("n", "matrix dimension", 48, 8, 192),
			bench.IntParam("tile", "tile dimension (must divide n)", 12, 4, 64),
		},
		Axes:            Axes{Procs: true, PerNode: true, Consistency: true},
		DefaultTopology: TopologySpec{Procs: []int{4}, PerNode: 4},
		DefaultEngine:   EngineSpec{Consistency: "both"},
		Check: func(ph *PhaseSpec, field string) error {
			n, tile := ph.Params.Int("n"), ph.Params.Int("tile")
			if n%tile != 0 {
				return errf(field+".params.tile", "must divide n (%d %% %d != 0)", n, tile)
			}
			return nil
		},
		run: func(ctx context.Context, eng *sweep.Engine, ph *PhaseSpec) *bench.Grid {
			return bench.DgemmGrid(ctx, eng, bench.DgemmSpec{
				N:           ph.Params.Int("n"),
				Tile:        ph.Params.Int("tile"),
				Procs:       ph.Topology.Procs,
				PerNode:     ph.Topology.PerNode,
				Consistency: ph.Engine.consistencyModes(),
			})
		},
	},
}

func lookupPattern(name string) (*pattern, bool) {
	p, ok := patterns[name]
	return p, ok
}

// consistencyModes expands the canonical consistency string into
// armci modes in column order.
func (e *EngineSpec) consistencyModes() []armci.ConsistencyMode {
	switch e.Consistency {
	case "naive":
		return []armci.ConsistencyMode{armci.ConsistencyNaive}
	case "region":
		return []armci.ConsistencyMode{armci.ConsistencyPerRegion}
	case "both":
		return []armci.ConsistencyMode{armci.ConsistencyNaive, armci.ConsistencyPerRegion}
	}
	panic("scenario: unresolved consistency " + e.Consistency)
}

// Info is one pattern's self-description, served by GET /v1/scenarios
// so clients compose specs by introspection instead of hard-coding.
type Info struct {
	Name   string       `json:"name"`
	Doc    string       `json:"doc"`
	Params bench.Schema `json:"params"`
	Axes   Axes         `json:"axes"`
}

// Patterns lists every registered composition pattern, sorted by name.
func Patterns() []Info {
	out := make([]Info, 0, len(patterns))
	for _, p := range patterns {
		schema := p.Schema
		if schema == nil {
			schema = bench.Schema{}
		}
		out = append(out, Info{Name: p.Name, Doc: p.Doc, Params: schema, Axes: p.Axes})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
