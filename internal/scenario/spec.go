// Package scenario is the declarative composition layer over the
// simulation harness: a spec is a JSON document listing phases, each
// composing orthogonal axes — a traffic pattern (ping, fetchadd, halo,
// worksteal, dgemm), a message-size distribution, a topology, an
// engine/consistency mode, and an optional fault plan. Specs normalize
// to a canonical form (defaults filled, axes sorted, unknown or unused
// fields rejected) before hashing, so a composed scenario slots into
// the serving layer's content-addressed cache exactly like a legacy
// flat-Params job: two spellings of the same experiment collide onto
// one key, and the rendered result is byte-identical at any
// sweep-worker or lane-shard count.
package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/bench"
	"repro/internal/fault"
	"repro/internal/sim"
)

// Limits on spec shape, in addition to bench's universal wire bounds.
const (
	MaxPhases      = 8
	MaxFaultEvents = 16
	MaxStartUS     = 10_000_000 // fault window offsets: <= 10 s virtual
	MaxDurUS       = 10_000_000
	MaxDelayUS     = 1_000_000
	MaxWeight      = 64 // mixture point repetition multiplier
	MaxFaultID     = 4095
	// DefaultFaultSeed fills a fault plan whose seed is omitted or zero.
	DefaultFaultSeed = 42
)

// SpecError reports one invalid spec field with enough structure for
// the serving layer's {error, field, hint} responses. Field is a
// JSON-path-like locator, e.g. "phases[1].fault.events[0].prob".
type SpecError struct {
	Field string
	Hint  string
}

func (e *SpecError) Error() string { return e.Field + ": " + e.Hint }

func errf(field, format string, args ...any) *SpecError {
	return &SpecError{Field: field, Hint: fmt.Sprintf(format, args...)}
}

// Spec is one composed scenario: an ordered list of phases executed
// sequentially on one engine. Version 1 is the only wire version; 0
// normalizes to 1.
type Spec struct {
	Version int         `json:"version"`
	Phases  []PhaseSpec `json:"phases"`
}

// PhaseSpec composes one phase from the orthogonal axes. Which axes a
// pattern consumes is declared in its registry entry; setting an axis
// the pattern does not consume is an error (silently dropping it would
// alias two different-looking specs onto one hash).
type PhaseSpec struct {
	Pattern  string        `json:"pattern"`
	Params   bench.Values  `json:"params,omitempty"`
	Sizes    *SizeDist     `json:"sizes,omitempty"`
	Topology *TopologySpec `json:"topology,omitempty"`
	Engine   *EngineSpec   `json:"engine,omitempty"`
	Fault    *FaultSpec    `json:"fault,omitempty"`
}

// SizeDist is the message-size axis: a single size, a power-of-two
// sweep, or a weighted mixture.
type SizeDist struct {
	Kind     string      `json:"kind"` // fixed | sweep | mixture
	Bytes    int         `json:"bytes,omitempty"`
	MinBytes int         `json:"min_bytes,omitempty"`
	MaxBytes int         `json:"max_bytes,omitempty"`
	Points   []SizePoint `json:"points,omitempty"`
}

// SizePoint is one mixture component: Weight scales how many
// repetitions of the measured loop run at Bytes.
type SizePoint struct {
	Bytes  int `json:"bytes"`
	Weight int `json:"weight"`
}

// TopologySpec is the process-layout axis.
type TopologySpec struct {
	Procs   []int `json:"procs,omitempty"`
	PerNode int   `json:"per_node,omitempty"`
}

// EngineSpec is the runtime-mode axis: progress engine mode and, for
// the dgemm pattern, the conflict-tracking consistency scheme.
type EngineSpec struct {
	Mode        string `json:"mode,omitempty"`        // default | async | both
	Consistency string `json:"consistency,omitempty"` // naive | region | both
}

// FaultSpec is the fault axis: a deterministic seed plus scripted
// windows, reusing internal/fault. Times are virtual microseconds;
// windows should start at or after bench.FaultEpoch (30 ms), where the
// patterns anchor their measured loops.
type FaultSpec struct {
	Seed   uint64           `json:"seed,omitempty"`
	Events []FaultEventSpec `json:"events"`
}

// FaultEventSpec is one scripted fault window. Nil id filters normalize
// to the explicit wildcard -1 (fault.Any).
type FaultEventSpec struct {
	Kind    string  `json:"kind"` // link_down | link_slow | node_down | delay | duplicate
	Link    *int    `json:"link,omitempty"`
	Node    *int    `json:"node,omitempty"`
	Src     *int    `json:"src,omitempty"`
	Dst     *int    `json:"dst,omitempty"`
	StartUS int64   `json:"start_us"`
	DurUS   int64   `json:"dur_us"`
	Factor  float64 `json:"factor,omitempty"`   // link_slow
	Prob    float64 `json:"prob,omitempty"`     // delay, duplicate
	DelayUS int64   `json:"delay_us,omitempty"` // delay
}

// Parse decodes a JSON spec strictly: unknown fields are rejected, so a
// typo cannot alias two semantically different specs onto one hash.
func Parse(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return s, fmt.Errorf("bad scenario spec: %w", err)
	}
	return s, nil
}

// Canon returns the canonical form of the spec: version pinned,
// pattern params resolved against their schemas (defaults spelled out),
// axes default-filled and sorted, unused axes rejected. Canon is
// idempotent — Canon(Canon(s)) == Canon(s) — which is what makes the
// canonical JSON a content address.
func (s Spec) Canon() (Spec, error) {
	switch s.Version {
	case 0:
		s.Version = 1
	case 1:
	default:
		return s, errf("version", "unsupported spec version %d (want 1)", s.Version)
	}
	if len(s.Phases) == 0 {
		return s, errf("phases", "at least one phase required")
	}
	if len(s.Phases) > MaxPhases {
		return s, errf("phases", "at most %d phases (got %d)", MaxPhases, len(s.Phases))
	}
	out := Spec{Version: 1, Phases: make([]PhaseSpec, len(s.Phases))}
	for i := range s.Phases {
		ph, err := canonPhase(s.Phases[i], fmt.Sprintf("phases[%d]", i))
		if err != nil {
			return s, err
		}
		out.Phases[i] = ph
	}
	return out, nil
}

// canonPhase canonicalizes one phase against its pattern's declaration.
func canonPhase(ph PhaseSpec, field string) (PhaseSpec, error) {
	pat, ok := lookupPattern(ph.Pattern)
	if !ok {
		return ph, errf(field+".pattern", "unknown pattern %q", ph.Pattern)
	}
	vals, err := pat.Schema.Resolve(ph.Params)
	if err != nil {
		var pe *bench.ParamError
		if errors.As(err, &pe) {
			return ph, &SpecError{Field: field + ".params." + pe.Param, Hint: pe.Hint}
		}
		return ph, &SpecError{Field: field + ".params", Hint: err.Error()}
	}
	ph.Params = vals

	if ph.Sizes, err = canonSizes(ph.Sizes, pat, field+".sizes"); err != nil {
		return ph, err
	}
	if ph.Topology, err = canonTopology(ph.Topology, pat, field+".topology"); err != nil {
		return ph, err
	}
	if ph.Engine, err = canonEngine(ph.Engine, pat, field+".engine"); err != nil {
		return ph, err
	}
	if ph.Fault, err = canonFault(ph.Fault, pat, field+".fault"); err != nil {
		return ph, err
	}
	if pat.Check != nil {
		if err := pat.Check(&ph, field); err != nil {
			return ph, err
		}
	}
	return ph, nil
}

// canonSizes fills or rejects the size axis.
func canonSizes(d *SizeDist, pat *pattern, field string) (*SizeDist, error) {
	if !pat.Axes.Sizes {
		if d != nil && (d.Kind != "" || d.Bytes != 0 || d.MinBytes != 0 ||
			d.MaxBytes != 0 || len(d.Points) != 0) {
			return nil, errf(field, "pattern %q has no message-size axis", pat.Name)
		}
		return nil, nil
	}
	if d == nil || (d.Kind == "" && d.Bytes == 0 && d.MinBytes == 0 &&
		d.MaxBytes == 0 && len(d.Points) == 0) {
		cp := *pat.DefaultSizes
		return &cp, nil
	}
	cp := *d
	cp.Points = append([]SizePoint(nil), d.Points...)
	switch cp.Kind {
	case "fixed":
		if cp.Bytes < bench.MinSize || cp.Bytes > bench.MaxSize {
			return nil, errf(field+".bytes", "must be in [%d, %d] (got %d)",
				bench.MinSize, bench.MaxSize, cp.Bytes)
		}
		if cp.MinBytes != 0 || cp.MaxBytes != 0 || len(cp.Points) != 0 {
			return nil, errf(field, "fixed distribution takes only bytes")
		}
	case "sweep":
		if cp.MinBytes == 0 {
			cp.MinBytes = pat.DefaultSizes.MinBytes
		}
		if cp.MaxBytes == 0 {
			cp.MaxBytes = pat.DefaultSizes.MaxBytes
		}
		if cp.Bytes != 0 || len(cp.Points) != 0 {
			return nil, errf(field, "sweep distribution takes only min_bytes/max_bytes")
		}
		for _, f := range []struct {
			name string
			v    int
		}{{"min_bytes", cp.MinBytes}, {"max_bytes", cp.MaxBytes}} {
			if f.v < bench.MinSize || f.v > bench.MaxSize {
				return nil, errf(field+"."+f.name, "must be in [%d, %d] (got %d)",
					bench.MinSize, bench.MaxSize, f.v)
			}
			if f.v&(f.v-1) != 0 {
				return nil, errf(field+"."+f.name, "must be a power of two (got %d)", f.v)
			}
		}
		if cp.MinBytes > cp.MaxBytes {
			return nil, errf(field, "min_bytes %d exceeds max_bytes %d", cp.MinBytes, cp.MaxBytes)
		}
	case "mixture":
		if cp.Bytes != 0 || cp.MinBytes != 0 || cp.MaxBytes != 0 {
			return nil, errf(field, "mixture distribution takes only points")
		}
		if len(cp.Points) == 0 {
			return nil, errf(field+".points", "at least one point required")
		}
		if len(cp.Points) > bench.MaxSizePoints {
			return nil, errf(field+".points", "at most %d points (got %d)",
				bench.MaxSizePoints, len(cp.Points))
		}
		for i := range cp.Points {
			p := &cp.Points[i]
			if p.Bytes < bench.MinSize || p.Bytes > bench.MaxSize {
				return nil, errf(fmt.Sprintf("%s.points[%d].bytes", field, i),
					"must be in [%d, %d] (got %d)", bench.MinSize, bench.MaxSize, p.Bytes)
			}
			if p.Weight == 0 {
				p.Weight = 1
			}
			if p.Weight < 1 || p.Weight > MaxWeight {
				return nil, errf(fmt.Sprintf("%s.points[%d].weight", field, i),
					"must be in [1, %d] (got %d)", MaxWeight, p.Weight)
			}
		}
		sort.Slice(cp.Points, func(i, j int) bool { return cp.Points[i].Bytes < cp.Points[j].Bytes })
		for i := 1; i < len(cp.Points); i++ {
			if cp.Points[i].Bytes == cp.Points[i-1].Bytes {
				return nil, errf(field+".points", "duplicate size %d", cp.Points[i].Bytes)
			}
		}
	default:
		return nil, errf(field+".kind", "unknown distribution %q (want fixed, sweep, or mixture)", cp.Kind)
	}
	return &cp, nil
}

// resolve expands a canonical distribution into the measured size list
// and optional per-size weights.
func (d *SizeDist) resolve() (sizes, weights []int) {
	switch d.Kind {
	case "fixed":
		return []int{d.Bytes}, nil
	case "sweep":
		for m := d.MinBytes; m <= d.MaxBytes; m *= 2 {
			sizes = append(sizes, m)
		}
		return sizes, nil
	case "mixture":
		for _, p := range d.Points {
			sizes = append(sizes, p.Bytes)
			weights = append(weights, p.Weight)
		}
		return sizes, weights
	}
	panic("scenario: unresolved size distribution " + d.Kind)
}

// canonTopology fills or rejects the layout axis.
func canonTopology(t *TopologySpec, pat *pattern, field string) (*TopologySpec, error) {
	if !pat.Axes.Procs && !pat.Axes.PerNode {
		if t != nil && (len(t.Procs) != 0 || t.PerNode != 0) {
			return nil, errf(field, "pattern %q has a fixed topology", pat.Name)
		}
		return nil, nil
	}
	cp := TopologySpec{}
	if t != nil {
		cp.Procs = append([]int(nil), t.Procs...)
		cp.PerNode = t.PerNode
	}
	if !pat.Axes.Procs {
		if len(cp.Procs) != 0 {
			return nil, errf(field+".procs", "pattern %q derives its process count", pat.Name)
		}
	} else {
		if len(cp.Procs) == 0 {
			cp.Procs = append([]int(nil), pat.DefaultTopology.Procs...)
		}
		if len(cp.Procs) > bench.MaxSweepPoints {
			return nil, errf(field+".procs", "at most %d sweep points (got %d)",
				bench.MaxSweepPoints, len(cp.Procs))
		}
		for _, n := range cp.Procs {
			if n < bench.MinProcs || n > bench.MaxProcs {
				return nil, errf(field+".procs", "each count must be in [%d, %d] (got %d)",
					bench.MinProcs, bench.MaxProcs, n)
			}
		}
		sort.Ints(cp.Procs)
		for i := 1; i < len(cp.Procs); i++ {
			if cp.Procs[i] == cp.Procs[i-1] {
				return nil, errf(field+".procs", "duplicate count %d", cp.Procs[i])
			}
		}
	}
	if cp.PerNode == 0 {
		cp.PerNode = pat.DefaultTopology.PerNode
	}
	if cp.PerNode < 1 || cp.PerNode > bench.MaxPerNode {
		return nil, errf(field+".per_node", "must be in [1, %d] (got %d)",
			bench.MaxPerNode, cp.PerNode)
	}
	return &cp, nil
}

// canonEngine fills or rejects the runtime-mode axis.
func canonEngine(e *EngineSpec, pat *pattern, field string) (*EngineSpec, error) {
	cp := EngineSpec{}
	if e != nil {
		cp = *e
	}
	if !pat.Axes.Mode {
		if cp.Mode != "" {
			return nil, errf(field+".mode", "pattern %q fixes its progress mode", pat.Name)
		}
	} else {
		if cp.Mode == "" {
			cp.Mode = pat.DefaultEngine.Mode
		}
		switch cp.Mode {
		case "default", "async", "both":
		default:
			return nil, errf(field+".mode", "unknown mode %q (want default, async, or both)", cp.Mode)
		}
	}
	if !pat.Axes.Consistency {
		if cp.Consistency != "" {
			return nil, errf(field+".consistency", "pattern %q has no consistency axis", pat.Name)
		}
	} else {
		if cp.Consistency == "" {
			cp.Consistency = pat.DefaultEngine.Consistency
		}
		switch cp.Consistency {
		case "naive", "region", "both":
		default:
			return nil, errf(field+".consistency",
				"unknown consistency %q (want naive, region, or both)", cp.Consistency)
		}
	}
	return &cp, nil
}

// modes expands the canonical mode string into async-thread values in
// column order.
func (e *EngineSpec) modes() []bool {
	switch e.Mode {
	case "default":
		return []bool{false}
	case "async":
		return []bool{true}
	case "both":
		return []bool{false, true}
	}
	panic("scenario: unresolved engine mode " + e.Mode)
}

// faultKinds orders the wire kinds for canonical event sorting.
var faultKinds = map[string]int{
	"link_down": 0, "link_slow": 1, "node_down": 2, "delay": 3, "duplicate": 4,
}

// canonFault fills or rejects the fault axis.
func canonFault(f *FaultSpec, pat *pattern, field string) (*FaultSpec, error) {
	if f == nil {
		return nil, nil
	}
	if !pat.Axes.Fault {
		return nil, errf(field, "pattern %q does not accept a fault plan", pat.Name)
	}
	cp := FaultSpec{Seed: f.Seed, Events: append([]FaultEventSpec(nil), f.Events...)}
	if cp.Seed == 0 {
		cp.Seed = DefaultFaultSeed
	}
	if len(cp.Events) == 0 {
		return nil, errf(field+".events", "at least one event required")
	}
	if len(cp.Events) > MaxFaultEvents {
		return nil, errf(field+".events", "at most %d events (got %d)", MaxFaultEvents, len(cp.Events))
	}
	for i := range cp.Events {
		if err := canonFaultEvent(&cp.Events[i], fmt.Sprintf("%s.events[%d]", field, i)); err != nil {
			return nil, err
		}
	}
	sort.SliceStable(cp.Events, func(i, j int) bool {
		a, b := cp.Events[i], cp.Events[j]
		if a.StartUS != b.StartUS {
			return a.StartUS < b.StartUS
		}
		if faultKinds[a.Kind] != faultKinds[b.Kind] {
			return faultKinds[a.Kind] < faultKinds[b.Kind]
		}
		if *a.Link != *b.Link {
			return *a.Link < *b.Link
		}
		if *a.Node != *b.Node {
			return *a.Node < *b.Node
		}
		if *a.Src != *b.Src {
			return *a.Src < *b.Src
		}
		if *a.Dst != *b.Dst {
			return *a.Dst < *b.Dst
		}
		return a.DurUS < b.DurUS
	})
	return &cp, nil
}

// canonFaultEvent normalizes one event in place: nil filters become the
// explicit wildcard, per-kind field usage is enforced, windows bounded.
func canonFaultEvent(e *FaultEventSpec, field string) error {
	kindOK := false
	for k := range faultKinds {
		if e.Kind == k {
			kindOK = true
		}
	}
	if !kindOK {
		return errf(field+".kind",
			"unknown kind %q (want link_down, link_slow, node_down, delay, or duplicate)", e.Kind)
	}
	if e.StartUS < 0 || e.StartUS > MaxStartUS {
		return errf(field+".start_us", "must be in [0, %d] (got %d)", MaxStartUS, e.StartUS)
	}
	if e.DurUS < 1 || e.DurUS > MaxDurUS {
		return errf(field+".dur_us", "must be in [1, %d] (got %d)", MaxDurUS, e.DurUS)
	}

	// Which id filters and knobs each kind consumes; the rest must be
	// absent (a silently dropped field would alias two specs).
	wantLink := e.Kind == "link_down" || e.Kind == "link_slow"
	wantNode := e.Kind == "node_down"
	wantEnds := e.Kind == "delay" || e.Kind == "duplicate"

	norm := func(p **int, used bool, name string) error {
		if !used {
			// The canonical form materializes unused filters as the
			// wildcard, so re-canonicalization must accept exactly that.
			if *p != nil && **p != fault.Any {
				return errf(field+"."+name, "not used by kind %q", e.Kind)
			}
			return nil
		}
		if *p == nil {
			v := fault.Any
			*p = &v
			return nil
		}
		if v := **p; v != fault.Any && (v < 0 || v > MaxFaultID) {
			return errf(field+"."+name, "must be -1 (any) or in [0, %d] (got %d)", MaxFaultID, v)
		}
		return nil
	}
	if err := norm(&e.Link, wantLink, "link"); err != nil {
		return err
	}
	if err := norm(&e.Node, wantNode, "node"); err != nil {
		return err
	}
	if err := norm(&e.Src, wantEnds, "src"); err != nil {
		return err
	}
	if err := norm(&e.Dst, wantEnds, "dst"); err != nil {
		return err
	}
	// After normalization every filter pointer is set (unused ones to the
	// wildcard) so canonical JSON and the sort comparator see one shape.
	ensure := func(p **int) {
		if *p == nil {
			v := fault.Any
			*p = &v
		}
	}
	ensure(&e.Link)
	ensure(&e.Node)
	ensure(&e.Src)
	ensure(&e.Dst)

	if e.Kind == "link_slow" {
		if e.Factor <= 0 || e.Factor > 1 {
			return errf(field+".factor", "must be in (0, 1] (got %g)", e.Factor)
		}
	} else if e.Factor != 0 {
		return errf(field+".factor", "not used by kind %q", e.Kind)
	}
	if wantEnds {
		if e.Prob <= 0 || e.Prob > 1 {
			return errf(field+".prob", "must be in (0, 1] (got %g)", e.Prob)
		}
	} else if e.Prob != 0 {
		return errf(field+".prob", "not used by kind %q", e.Kind)
	}
	if e.Kind == "delay" {
		if e.DelayUS < 1 || e.DelayUS > MaxDelayUS {
			return errf(field+".delay_us", "must be in [1, %d] (got %d)", MaxDelayUS, e.DelayUS)
		}
	} else if e.DelayUS != 0 {
		return errf(field+".delay_us", "not used by kind %q", e.Kind)
	}
	return nil
}

// build constructs a fresh fault.Plan from a canonical FaultSpec.
// Injector state is per-simulation, so every simulation gets its own
// plan instance.
func (f *FaultSpec) build() *fault.Plan {
	p := fault.NewPlan(f.Seed)
	us := func(v int64) sim.Time { return sim.Time(v) * sim.Microsecond }
	for _, e := range f.Events {
		switch e.Kind {
		case "link_down":
			p.LinkDown(*e.Link, us(e.StartUS), us(e.DurUS))
		case "link_slow":
			p.LinkSlow(*e.Link, us(e.StartUS), us(e.DurUS), e.Factor)
		case "node_down":
			p.NodeDown(*e.Node, us(e.StartUS), us(e.DurUS))
		case "delay":
			p.Delay(*e.Src, *e.Dst, us(e.StartUS), us(e.DurUS), e.Prob, us(e.DelayUS))
		case "duplicate":
			p.Duplicate(*e.Src, *e.Dst, us(e.StartUS), us(e.DurUS), e.Prob)
		}
	}
	return p
}

// factory returns a fresh-plan constructor for the bench pattern specs,
// or nil when no fault axis is set.
func (f *FaultSpec) factory() func() *fault.Plan {
	if f == nil {
		return nil
	}
	return f.build
}

// seed returns the fault seed, or 0 when no fault axis is set.
func (f *FaultSpec) seed() uint64 {
	if f == nil {
		return 0
	}
	return f.Seed
}
