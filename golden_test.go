package repro

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/armci"
	"repro/internal/bench"
	"repro/internal/obs"
	"repro/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files from the current code")

// determinismGolden pins the observable outputs of fixed-seed runs so that
// engine rewrites (event-queue layout, route caching, ...) provably change
// nothing: same event count, same final virtual time, same figure bytes.
type determinismGolden struct {
	ScenarioEvents uint64 `json:"scenario_events_fired"`
	ScenarioFinal  int64  `json:"scenario_final_ns"`
	Fig3CSVSHA256  string `json:"fig3_csv_sha256"`
	Fig9CSVSHA256  string `json:"fig9_csv_sha256"`
}

// goldenScenario is a fixed-seed multi-rank workload crossing the hot
// paths this harness optimizes: RDMA put/get, AM-serviced fetch-and-add,
// accumulate, fences, barriers, loopback (same-node peers at c=4), and a
// live observability registry (traced link reservations).
func goldenScenario() (events uint64, final sim.Time) {
	w := goldenScenarioSharded(0, obs.New(obs.WithTrackCap(256)))
	return w.K.EventsFired(), w.K.Now()
}

// goldenScenarioSharded is the golden workload with an explicit lane
// worker count (armci.Config.Shards) and registry — the knobs the
// shard-invariance and engine-equivalence tests sweep. The returned
// world is finished; callers read its kernel and aggregates.
func goldenScenarioSharded(shards int, reg *obs.Registry) *armci.World {
	const procs = 24
	cfg := armci.Config{
		Procs: procs, ProcsPerNode: 4, AsyncThread: true,
		Seed: 7, Obs: reg, Shards: shards,
	}
	w := armci.MustRun(cfg, func(th *sim.Thread, rt *armci.Runtime) {
		a := rt.Malloc(th, 4096)
		local := rt.LocalAlloc(th, 4096)
		peer := (rt.Rank + 1) % procs
		for i := 0; i < 4; i++ {
			rt.Put(th, local, a.At(peer), 256)
			rt.Get(th, a.At(peer), local, 512)
			rt.FetchAdd(th, a.At(0), 1)
			rt.Acc(th, local, a.At(peer).Add(512), 64, 2.0)
		}
		rt.Fence(th, peer)
		rt.Barrier(th)
	})
	return w
}

func csvHash(g *bench.Grid) string {
	var sb strings.Builder
	g.RenderCSV(&sb)
	sum := sha256.Sum256([]byte(sb.String()))
	return hex.EncodeToString(sum[:])
}

func TestDeterminismGolden(t *testing.T) {
	events, final := goldenScenario()
	got := determinismGolden{
		ScenarioEvents: events,
		ScenarioFinal:  int64(final),
		Fig3CSVSHA256:  csvHash(bench.Fig3([]int{16, 256, 4096}, 3)),
		Fig9CSVSHA256:  csvHash(bench.Fig9([]int{8, 16}, 4)),
	}

	path := filepath.Join("testdata", "determinism_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %+v", got)
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run TestDeterminismGolden -update .`): %v", err)
	}
	var want determinismGolden
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("determinism golden mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestDeterminismRepeatable guards against intra-process nondeterminism
// (map iteration leaking into event order): two back-to-back runs of the
// scenario must agree exactly.
func TestDeterminismRepeatable(t *testing.T) {
	e1, f1 := goldenScenario()
	e2, f2 := goldenScenario()
	if e1 != e2 || f1 != f2 {
		t.Fatalf("same-process reruns diverge: (%d, %d) vs (%d, %d)", e1, f1, e2, f2)
	}
}
